//! Operator→node placement within a region.
//!
//! The paper groups operators of the same color onto one node (Figs 2
//! and 3) and derives node roles from what they host: source nodes,
//! sink nodes, computing nodes, and idle nodes (which hold checkpoint
//! copies and stand by as replacements).

use crate::graph::{OpId, OpKind, QueryGraph};

/// Role of a node (slot) in a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Hosts at least one source operator.
    Source,
    /// Hosts at least one sink operator (and no source).
    Sink,
    /// Hosts only compute operators.
    Computing,
    /// Hosts nothing; standby + checkpoint replica holder.
    Idle,
}

/// An operator→slot assignment for one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `op_slot[op] = slot`.
    pub op_slot: Vec<u32>,
    /// Total slots (phones) in the region, including idle ones.
    pub slots: u32,
}

impl Placement {
    /// All-unassigned placement over `slots` phones.
    pub fn new(graph: &QueryGraph, slots: u32) -> Self {
        Placement {
            op_slot: vec![u32::MAX; graph.op_count()],
            slots,
        }
    }

    /// Assign `op` to `slot`.
    pub fn assign(&mut self, op: OpId, slot: u32) -> &mut Self {
        assert!(
            slot < self.slots,
            "slot {slot} out of range ({})",
            self.slots
        );
        self.op_slot[op.index()] = slot;
        self
    }

    /// Slot hosting `op`.
    pub fn slot_of(&self, op: OpId) -> u32 {
        self.op_slot[op.index()]
    }

    /// Operators hosted on `slot`.
    pub fn ops_on(&self, slot: u32) -> Vec<OpId> {
        self.op_slot
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == slot)
            .map(|(i, _)| OpId(i as u32))
            .collect()
    }

    /// Role of `slot` under this placement.
    pub fn role_of(&self, graph: &QueryGraph, slot: u32) -> NodeRole {
        let ops = self.ops_on(slot);
        if ops.is_empty() {
            return NodeRole::Idle;
        }
        if ops.iter().any(|&o| graph.op(o).kind == OpKind::Source) {
            return NodeRole::Source;
        }
        if ops.iter().any(|&o| graph.op(o).kind == OpKind::Sink) {
            return NodeRole::Sink;
        }
        NodeRole::Computing
    }

    /// Slots currently idle.
    pub fn idle_slots(&self, graph: &QueryGraph) -> Vec<u32> {
        (0..self.slots)
            .filter(|&s| self.role_of(graph, s) == NodeRole::Idle)
            .collect()
    }

    /// Slots hosting at least one operator.
    pub fn used_slots(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .op_slot
            .iter()
            .copied()
            .filter(|&s| s != u32::MAX)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Check every operator is assigned to a valid slot.
    pub fn validate(&self, graph: &QueryGraph) -> Result<(), String> {
        for op in graph.op_ids() {
            let s = self.op_slot[op.index()];
            if s == u32::MAX {
                return Err(format!("op '{}' unassigned", graph.op(op).name));
            }
            if s >= self.slots {
                return Err(format!(
                    "op '{}' on slot {s}, but region has {} slots",
                    graph.op(op).name,
                    self.slots
                ));
            }
        }
        Ok(())
    }

    /// Round-robin auto-placement over the first `compute_slots` slots
    /// (test/example convenience; real apps use the paper's groupings).
    pub fn round_robin(graph: &QueryGraph, slots: u32, compute_slots: u32) -> Self {
        assert!(compute_slots > 0 && compute_slots <= slots);
        let mut p = Placement::new(graph, slots);
        for (i, op) in graph.op_ids().enumerate() {
            p.assign(op, (i as u32) % compute_slots);
        }
        p
    }

    /// Move every operator on `from` to `to` (failure replacement).
    pub fn reassign_slot(&mut self, from: u32, to: u32) {
        assert!(to < self.slots);
        for s in self.op_slot.iter_mut() {
            if *s == from {
                *s = to;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpKind;
    use crate::ops::Relay;
    use simkernel::SimDuration;

    fn relay() -> Box<dyn crate::operator::Operator> {
        Box::new(Relay::new(SimDuration::from_millis(1)))
    }

    fn chain() -> (QueryGraph, [OpId; 4]) {
        let mut g = QueryGraph::new();
        let s = g.add_op("S", OpKind::Source, relay);
        let a = g.add_op("A", OpKind::Compute, relay);
        let b = g.add_op("B", OpKind::Compute, relay);
        let k = g.add_op("K", OpKind::Sink, relay);
        g.connect(s, a);
        g.connect(a, b);
        g.connect(b, k);
        (g, [s, a, b, k])
    }

    #[test]
    fn assign_and_roles() {
        let (g, [s, a, b, k]) = chain();
        let mut p = Placement::new(&g, 6);
        p.assign(s, 0).assign(a, 1).assign(b, 1).assign(k, 2);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.role_of(&g, 0), NodeRole::Source);
        assert_eq!(p.role_of(&g, 1), NodeRole::Computing);
        assert_eq!(p.role_of(&g, 2), NodeRole::Sink);
        assert_eq!(p.role_of(&g, 3), NodeRole::Idle);
        assert_eq!(p.idle_slots(&g), vec![3, 4, 5]);
        assert_eq!(p.used_slots(), vec![0, 1, 2]);
        assert_eq!(p.ops_on(1), vec![a, b]);
    }

    #[test]
    fn unassigned_rejected() {
        let (g, [s, a, b, _k]) = chain();
        let mut p = Placement::new(&g, 4);
        p.assign(s, 0).assign(a, 1).assign(b, 2);
        assert!(p.validate(&g).unwrap_err().contains("unassigned"));
    }

    #[test]
    fn round_robin_covers_all() {
        let (g, _) = chain();
        let p = Placement::round_robin(&g, 8, 4);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.idle_slots(&g).len(), 4);
    }

    #[test]
    fn reassign_slot_moves_ops() {
        let (g, [s, a, b, k]) = chain();
        let mut p = Placement::new(&g, 4);
        p.assign(s, 0).assign(a, 1).assign(b, 1).assign(k, 2);
        p.reassign_slot(1, 3);
        assert_eq!(p.ops_on(1), vec![]);
        assert_eq!(p.ops_on(3), vec![a, b]);
        assert_eq!(p.role_of(&g, 3), NodeRole::Computing);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let (g, [s, ..]) = chain();
        let mut p = Placement::new(&g, 2);
        p.assign(s, 5);
    }
}
