//! The phone-side node runtime.
//!
//! One [`NodeActor`] per phone. It hosts the operators placed on this
//! phone, keeps a FIFO input queue per in-edge, models the phone's
//! single-core CPU (one tuple in service at a time, cost charged from
//! the operator's cost model), routes outputs to downstream nodes over
//! WiFi (or cellular in urgent mode / between regions), and invokes the
//! plugged-in [`crate::ft::FtScheme`] at every fault-tolerance-relevant
//! point.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use simkernel::{impl_actor_any, Actor, ActorId, Ctx, Event, EventBox, SimDuration, SimTime};
use simnet::cellular::{CellRx, CellSend};
use simnet::ethernet::{EthRx, EthSend};
use simnet::stats::TrafficClass;
use simnet::wifi::{SendMode, Service, WifiRx, WifiSend};
use simnet::{payload, TxDone, TxFailed};

use crate::ft::FtScheme;
use crate::graph::{EdgeId, OpId, OpKind, QueryGraph};
use crate::metrics::NodeMetrics;
use crate::operator::{OpState, Operator, Outputs};
use crate::store::CheckpointStore;
use crate::tuple::{StreamItem, Tuple, TupleValue};

/// A stream item crossing the network between two nodes.
#[derive(Debug, Clone)]
pub struct ItemMsg {
    /// The edge the item travels on.
    pub edge: EdgeId,
    /// Sending node's slot.
    pub from_slot: u32,
    /// The item.
    pub item: StreamItem,
}

/// External input injected at a source operator (from the workload
/// driver or a sensor).
#[derive(Debug, Clone)]
pub struct SourceEmit {
    /// Target source operator (must be hosted here).
    pub op: OpId,
    /// Content.
    pub value: TupleValue,
    /// Wire/storage size.
    pub bytes: u64,
}

/// A result published by an upstream region's sink, arriving at this
/// region's source operator over the cellular network.
#[derive(Debug, Clone)]
pub struct InterRegionMsg {
    /// Target source operator in the receiving region.
    pub dst_op: OpId,
    /// Content.
    pub value: TupleValue,
    /// Size.
    pub bytes: u64,
    /// Override for the tuple's enter-the-system timestamp. `None`
    /// (region cascading) restarts the latency clock at arrival —
    /// per-region latency, as reported in Table I. `Some(t)` (the
    /// server baseline's sensor uplink) preserves the capture time so
    /// upload queueing counts toward latency.
    pub entered: Option<SimTime>,
}

/// Internal: the CPU finished the tuple in service.
#[derive(Debug)]
struct ProcDone;

/// Internal: an [`Install`] finished loading.
#[derive(Debug)]
struct InstallReady;

/// Fault injection: the phone crashes (fail-stop).
#[derive(Debug, Clone, Copy)]
pub struct Kill;

/// Fault injection: a previously failed phone reboots (flash intact).
/// The runtime clears its hosting, brings it back alive and registers
/// with the controller as an idle node.
#[derive(Debug, Clone, Copy)]
pub struct Reboot;

/// Internal: a severed controller RPC's backoff window elapsed —
/// re-send the stored payload under the same tag.
#[derive(Debug, Clone, Copy)]
struct CtlRetryFire {
    tag: u64,
}

/// Node → controller: (re-)registration after boot/reboot.
#[derive(Debug, Clone, Copy)]
pub struct RegisterNode {
    /// Region registering.
    pub region: usize,
    /// Slot registering.
    pub slot: u32,
}

/// Controller liveness probe.
#[derive(Debug, Clone, Copy)]
pub struct Ping {
    /// Correlates [`Pong`] replies.
    pub nonce: u64,
}

/// Reply to [`Ping`], sent to the controller over cellular.
#[derive(Debug, Clone, Copy)]
pub struct Pong {
    /// Echoed nonce.
    pub nonce: u64,
    /// Responding node's region.
    pub region: usize,
    /// Responding node's slot.
    pub slot: u32,
}

/// Report to the controller: a reliable send to `slot` failed.
#[derive(Debug, Clone, Copy)]
pub struct ReportDead {
    /// Region of the observation.
    pub region: usize,
    /// The unreachable slot.
    pub slot: u32,
    /// Reporting slot.
    pub observed_by: u32,
}

/// Where a (re)installed node gets its operator states from.
#[derive(Debug, Clone)]
pub enum InstallStates {
    /// Fresh operators, no state.
    Fresh,
    /// Restore from this node's own [`CheckpointStore`] at `version`.
    FromLocalStore {
        /// Checkpoint version to load.
        version: u64,
    },
    /// Explicit states shipped by the controller / a peer.
    Explicit(Vec<(OpId, OpState)>),
}

/// Controller RPC: (re)install operators on this node — used at system
/// startup, failure recovery and departure replacement.
#[derive(Debug, Clone)]
pub struct Install {
    /// Operators this node must host from now on.
    pub ops: Vec<OpId>,
    /// Initial operator states.
    pub states: InstallStates,
    /// Fresh region-wide op→slot assignment.
    pub op_slot: Vec<u32>,
    /// Fresh slot→actor binding.
    pub slot_actors: Vec<ActorId>,
    /// Modeling of code transfer + state load + WiFi rebuild time:
    /// the node comes alive this long after the Install arrives.
    pub ready_in: SimDuration,
}

/// Controller RPC: update routing tables without reinstalling.
#[derive(Debug, Clone)]
pub struct UpdateRouting {
    /// New op→slot assignment (None = unchanged).
    pub op_slot: Option<Vec<u32>>,
    /// New slot→actor binding (None = unchanged).
    pub slot_actors: Option<Vec<ActorId>>,
}

/// Controller RPC: toggle urgent (cellular) routing for edges whose
/// WiFi path broke (paper §III-E, Fig 7 time instant 2).
#[derive(Debug, Clone)]
pub struct SetUrgentEdges {
    /// Affected edges.
    pub edges: Vec<EdgeId>,
    /// Enter (true) or leave (false) urgent mode.
    pub on: bool,
}

/// Controller RPC: replace the inter-region links of this (sink) node.
#[derive(Debug, Clone)]
pub struct UpdateInterRegion {
    /// New link set.
    pub links: Vec<InterRegionLink>,
}

/// An inter-region connection from a hosted sink operator to a source
/// operator of a downstream region.
#[derive(Debug, Clone, Copy)]
pub struct InterRegionLink {
    /// The hosted sink publishing on this link.
    pub src_op: OpId,
    /// Source node (actor) in the downstream region.
    pub dst_actor: ActorId,
    /// Source operator fed there.
    pub dst_op: OpId,
}

/// Which transport carries intra-deployment tuple traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimaryTransport {
    /// Ad-hoc WiFi within a region (phones).
    Wifi,
    /// Datacenter Ethernet (server baseline).
    Ethernet,
}

/// Static node parameters.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Region index.
    pub region: usize,
    /// Slot (logical position) within the region.
    pub slot: u32,
    /// Service-time multiplier: 1.0 = reference phone core; a server
    /// core is ~0.1 (faster).
    pub cpu_factor: f64,
    /// Bound on buffered external inputs per source op (drop-oldest).
    pub source_queue_cap: usize,
    /// Transport for intra-deployment edges.
    pub primary: PrimaryTransport,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            region: 0,
            slot: 0,
            cpu_factor: 1.0,
            source_queue_cap: 10,
            primary: PrimaryTransport::Wifi,
        }
    }
}

/// Everything about a node except its FT scheme. Schemes receive
/// `&mut NodeInner` and may use any of the public methods/fields.
pub struct NodeInner {
    /// Static parameters.
    pub cfg: NodeConfig,
    /// The region's query network.
    pub graph: Arc<QueryGraph>,
    /// Hosted operator instances.
    pub ops: BTreeMap<OpId, Box<dyn Operator>>,
    /// Region-wide op→slot assignment.
    pub op_slot: Vec<u32>,
    /// Region-wide slot→actor binding.
    pub slot_actors: Vec<ActorId>,
    /// Per-in-edge FIFO queues (includes source pseudo-edges).
    pub queues: BTreeMap<EdgeId, VecDeque<StreamItem>>,
    /// Edges the scheme paused (token alignment).
    pub paused: BTreeSet<EdgeId>,
    /// Edges currently routed over cellular (urgent mode).
    pub urgent_edges: BTreeSet<EdgeId>,
    /// Inter-region links of hosted sinks.
    pub inter_region: Vec<InterRegionLink>,
    /// CPU busy flag (single core).
    pub busy: bool,
    /// Tuple in service.
    current: Option<(EdgeId, Tuple)>,
    /// Fail-stop flag.
    pub alive: bool,
    /// WiFi medium of this region.
    pub wifi: ActorId,
    /// Global cellular network.
    pub cell: ActorId,
    /// Datacenter Ethernet (server baseline only).
    pub eth: Option<ActorId>,
    /// The controller actor.
    pub controller: ActorId,
    /// Traffic class used for this node's tuple sends (rep-2 labels the
    /// duplicate flow `Replication` so Fig 10b can attribute it).
    pub data_class: TrafficClass,
    /// WiFi congestion signal: while set, fresh bulky sensor inputs are
    /// shed at admission (sensor buffer overflow).
    pub net_congested: bool,
    /// Local durable-ish storage.
    pub store: CheckpointStore,
    /// Probes.
    pub metrics: NodeMetrics,
    next_seq: u64,
    next_tag: u64,
    pending_sends: BTreeMap<u64, (u32, EdgeId)>,
    /// Controller RPCs tracked for partition retry: tag → stored send.
    ctl_retries: BTreeMap<u64, CtlRetry>,
    rr: usize,
    /// Pending install to finish (states deferred until ready).
    pending_install: Option<Install>,
}

/// A controller RPC kept around so a [`simnet::TxSevered`] completion
/// can re-send it after a capped-exponential backoff window instead of
/// silently losing it behind a partition.
struct CtlRetry {
    bytes: u64,
    payload: simnet::Payload,
    attempt: u32,
}

/// First retry window after a severed controller RPC.
const CTL_RETRY_BASE: SimDuration = SimDuration::from_secs(1);
/// Backoff cap: retries never wait longer than this between attempts.
const CTL_RETRY_CAP: SimDuration = SimDuration::from_secs(32);

impl NodeInner {
    /// Create a node shell; call [`NodeInner::host_op`] (or send
    /// [`Install`]) before running.
    pub fn new(
        cfg: NodeConfig,
        graph: Arc<QueryGraph>,
        wifi: ActorId,
        cell: ActorId,
        controller: ActorId,
    ) -> Self {
        let op_count = graph.op_count();
        NodeInner {
            cfg,
            graph,
            ops: BTreeMap::new(),
            op_slot: vec![u32::MAX; op_count],
            slot_actors: Vec::new(),
            queues: BTreeMap::new(),
            paused: BTreeSet::new(),
            urgent_edges: BTreeSet::new(),
            inter_region: Vec::new(),
            busy: false,
            current: None,
            alive: true,
            wifi,
            cell,
            eth: None,
            controller,
            data_class: TrafficClass::Data,
            net_congested: false,
            store: CheckpointStore::new(),
            metrics: NodeMetrics::default(),
            next_seq: 0,
            next_tag: 1,
            pending_sends: BTreeMap::new(),
            ctl_retries: BTreeMap::new(),
            rr: 0,
            pending_install: None,
        }
    }

    /// Instantiate and host `op`, creating its input queues.
    pub fn host_op(&mut self, op: OpId) {
        let spec = self.graph.op(op);
        let inst = spec.instantiate();
        for &e in &spec.in_edges {
            self.queues.entry(e).or_default();
        }
        if spec.kind == OpKind::Source {
            self.queues.entry(EdgeId::source(op)).or_default();
        }
        self.ops.insert(op, inst);
    }

    /// Stop hosting `op` (drops its instance; queues are dropped too).
    pub fn unhost_op(&mut self, op: OpId) {
        let in_edges = self.graph.op(op).in_edges.clone();
        self.ops.remove(&op);
        for e in in_edges {
            self.queues.remove(&e);
        }
        self.queues.remove(&EdgeId::source(op));
    }

    /// Is `op` hosted here?
    pub fn hosts(&self, op: OpId) -> bool {
        self.ops.contains_key(&op)
    }

    /// Hosted source operators.
    pub fn hosted_sources(&self) -> Vec<OpId> {
        self.ops
            .keys()
            .copied()
            .filter(|&o| self.graph.op(o).kind == OpKind::Source)
            .collect()
    }

    /// Hosted sink operators.
    pub fn hosted_sinks(&self) -> Vec<OpId> {
        self.ops
            .keys()
            .copied()
            .filter(|&o| self.graph.op(o).kind == OpKind::Sink)
            .collect()
    }

    /// Does this node host any source op (is it a *source node*)?
    pub fn is_source_node(&self) -> bool {
        !self.hosted_sources().is_empty()
    }

    /// In-edges of hosted ops whose producer lives on another slot —
    /// the edges that carry tokens.
    pub fn remote_in_edges(&self) -> Vec<EdgeId> {
        let mut v = Vec::new();
        for &op in self.ops.keys() {
            for &e in &self.graph.op(op).in_edges {
                let from = self.graph.edge(e).from;
                if self.op_slot[from.index()] != self.cfg.slot {
                    v.push(e);
                }
            }
        }
        v
    }

    /// Out-edges of hosted ops whose consumer lives on another slot.
    pub fn remote_out_edges(&self) -> Vec<EdgeId> {
        let mut v = Vec::new();
        for &op in self.ops.keys() {
            for &e in &self.graph.op(op).out_edges {
                let to = self.graph.edge(e).to;
                if self.op_slot[to.index()] != self.cfg.slot {
                    v.push(e);
                }
            }
        }
        v
    }

    /// Snapshot every hosted operator: `(op, state, bytes)`.
    pub fn snapshot_ops(&self) -> Vec<(OpId, OpState, u64)> {
        self.ops
            .iter()
            .map(|(&op, inst)| (op, inst.snapshot(), inst.state_bytes()))
            .collect()
    }

    /// Total serialized state bytes across hosted ops.
    pub fn total_state_bytes(&self) -> u64 {
        self.ops.values().map(|o| o.state_bytes()).sum()
    }

    /// Restore hosted ops from explicit states.
    pub fn restore_ops(&mut self, states: &[(OpId, OpState)]) {
        for (op, st) in states {
            if let Some(inst) = self.ops.get_mut(op) {
                inst.restore(st);
            }
        }
    }

    /// Allocate a completion tag unique within this node.
    pub fn alloc_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// Allocate a tuple id: `(slot << 40) | seq`.
    pub fn alloc_tuple_id(&mut self) -> u64 {
        let id = ((self.cfg.slot as u64) << 40) | self.next_seq;
        self.next_seq += 1;
        id
    }

    /// Enqueue an item on an in-edge queue (no scheme hook — caller's
    /// responsibility).
    pub fn push_item(&mut self, edge: EdgeId, item: StreamItem) {
        self.queues.entry(edge).or_default().push_back(item);
    }

    /// Enqueue an external input at a source op, honoring the cap
    /// (drop-oldest). Replay pushes bypass the cap.
    pub fn push_source_input(&mut self, op: OpId, tuple: Tuple) {
        let cap = self.cfg.source_queue_cap;
        let q = self.queues.entry(EdgeId::source(op)).or_default();
        q.push_back(StreamItem::Tuple(tuple));
        if q.len() > cap {
            q.pop_front();
            self.metrics.source_drops += 1;
        }
    }

    /// Enqueue a replayed source tuple (bypasses the cap).
    pub fn push_source_replay(&mut self, op: OpId, mut tuple: Tuple) {
        tuple.replay = true;
        self.queues
            .entry(EdgeId::source(op))
            .or_default()
            .push_back(StreamItem::Tuple(tuple));
    }

    /// Low-level WiFi send.
    #[allow(clippy::too_many_arguments)]
    pub fn send_wifi(
        &mut self,
        ctx: &mut Ctx,
        mode: SendMode,
        service: Service,
        class: TrafficClass,
        bytes: u64,
        tag: u64,
        payload: Option<simnet::Payload>,
    ) {
        let src = ctx.self_id();
        let wifi = self.wifi;
        ctx.send(
            wifi,
            WifiSend {
                src,
                mode,
                service,
                class,
                bytes,
                tag,
                payload,
            },
        );
    }

    /// Low-level cellular send.
    pub fn send_cell(
        &mut self,
        ctx: &mut Ctx,
        dst: ActorId,
        class: TrafficClass,
        bytes: u64,
        tag: u64,
        payload: Option<simnet::Payload>,
    ) {
        let src = ctx.self_id();
        let cell = self.cell;
        ctx.send(
            cell,
            CellSend {
                src,
                dst,
                class,
                bytes,
                tag,
                payload,
            },
        );
    }

    /// Send a small control message to the controller over cellular.
    pub fn send_controller(&mut self, ctx: &mut Ctx, bytes: u64, ev: impl Event) {
        let dst = self.controller;
        self.send_cell(ctx, dst, TrafficClass::Control, bytes, 0, Some(payload(ev)));
    }

    /// Send a controller RPC that must survive network weather: the
    /// send is tagged and kept; a [`simnet::TxSevered`] completion
    /// re-sends it with capped exponential backoff until the partition
    /// heals (`TxDone`) or the controller is actually gone (`TxFailed`).
    pub fn send_controller_tracked(&mut self, ctx: &mut Ctx, bytes: u64, ev: impl Event) {
        let dst = self.controller;
        let tag = self.alloc_tag();
        let pl = payload(ev);
        self.ctl_retries.insert(
            tag,
            CtlRetry {
                bytes,
                payload: pl.clone(),
                attempt: 0,
            },
        );
        self.send_cell(ctx, dst, TrafficClass::Control, bytes, tag, Some(pl));
    }

    /// A tracked controller RPC completed (delivered, or the controller
    /// itself failed — retrying cannot help either way). Returns whether
    /// the tag was one of ours.
    fn ctl_retry_complete(&mut self, tag: u64) -> bool {
        self.ctl_retries.remove(&tag).is_some()
    }

    /// A tracked controller RPC was severed by a partition: schedule a
    /// re-send after the current backoff window. Returns whether the
    /// tag was one of ours.
    fn ctl_retry_severed(&mut self, tag: u64, ctx: &mut Ctx) -> bool {
        let Some(r) = self.ctl_retries.get_mut(&tag) else {
            return false;
        };
        r.attempt = r.attempt.saturating_add(1);
        let shift = (r.attempt - 1).min(6);
        let delay = CTL_RETRY_BASE
            .saturating_mul(1u64 << shift)
            .min(CTL_RETRY_CAP);
        let me = ctx.self_id();
        ctx.send_in(delay, me, CtlRetryFire { tag });
        true
    }

    /// Backoff elapsed: re-send the stored RPC under its original tag
    /// (dead phones and cancelled entries fall through silently).
    fn ctl_retry_fire(&mut self, tag: u64, ctx: &mut Ctx) {
        if !self.alive {
            self.ctl_retries.remove(&tag);
            return;
        }
        let Some((bytes, pl)) = self
            .ctl_retries
            .get(&tag)
            .map(|r| (r.bytes, r.payload.clone()))
        else {
            return;
        };
        let dst = self.controller;
        ctx.count("node.ctl_retries", 1);
        self.send_cell(ctx, dst, TrafficClass::Control, bytes, tag, Some(pl));
    }

    /// Route one item along `edge`: local fast path or remote transport.
    /// Remote tuple sends are tracked so a `TxFailed` triggers a
    /// [`ReportDead`] to the controller.
    pub fn route_item(&mut self, ctx: &mut Ctx, edge: EdgeId, item: StreamItem) {
        let dst_op = self.graph.edge_target(edge);
        let dst_slot = self.op_slot[dst_op.index()];
        if dst_slot == u32::MAX {
            // The destination op is unassigned — a routing update raced
            // a recovery/stop. Drop the item (replay covers it) rather
            // than kill the phone.
            self.metrics.routing_drops += 1;
            ctx.count("node.routing_drops", 1);
            return;
        }
        if dst_slot == self.cfg.slot {
            self.push_item(edge, item);
            return;
        }
        let Some(&dst_actor) = self.slot_actors.get(dst_slot as usize) else {
            // Stale slot table (a malformed/old routing update): drop.
            self.metrics.routing_drops += 1;
            ctx.count("node.routing_drops", 1);
            return;
        };
        let bytes = item.bytes();
        let tag = self.alloc_tag();
        self.pending_sends.insert(tag, (dst_slot, edge));
        let msg = ItemMsg {
            edge,
            from_slot: self.cfg.slot,
            item,
        };
        let class = self.data_class;
        if self.urgent_edges.contains(&edge) {
            self.send_cell(ctx, dst_actor, class, bytes, tag, Some(payload(msg)));
            return;
        }
        match self.cfg.primary {
            PrimaryTransport::Wifi => {
                self.send_wifi(
                    ctx,
                    SendMode::Unicast(dst_actor),
                    Service::Reliable,
                    class,
                    bytes,
                    tag,
                    Some(payload(msg)),
                );
            }
            PrimaryTransport::Ethernet => {
                let Some(eth) = self.eth else {
                    // Misconfigured node (Ethernet primary, no link):
                    // drop rather than panic the deployment.
                    self.metrics.routing_drops += 1;
                    ctx.count("node.routing_drops", 1);
                    return;
                };
                let src = ctx.self_id();
                ctx.send(
                    eth,
                    EthSend {
                        src,
                        dst: dst_actor,
                        class,
                        bytes,
                        tag,
                        payload: Some(payload(msg)),
                    },
                );
            }
        }
    }

    /// Is the completion tag one of the runtime's tracked tuple sends?
    fn take_pending(&mut self, tag: u64) -> Option<(u32, EdgeId)> {
        self.pending_sends.remove(&tag)
    }

    /// Drop hosted operators that the (new) assignment maps elsewhere —
    /// routing updates are authoritative, so a node never keeps serving
    /// an operator that moved away.
    pub fn unhost_stale(&mut self) {
        let stale: Vec<OpId> = self
            .ops
            .keys()
            .copied()
            .filter(|op| self.op_slot[op.index()] != self.cfg.slot)
            .collect();
        for op in stale {
            self.unhost_op(op);
        }
    }

    /// Abort the tuple in service (rollback): the pending completion
    /// event becomes a no-op.
    pub fn abort_current(&mut self) {
        self.busy = false;
        self.current = None;
    }

    /// Clear all input queues and pauses (rollback / reboot).
    pub fn clear_queues(&mut self) {
        for q in self.queues.values_mut() {
            q.clear();
        }
        self.paused.clear();
    }
}

/// The phone actor: [`NodeInner`] + a fault-tolerance scheme.
pub struct NodeActor {
    /// Runtime state (schemes receive `&mut` to this).
    pub inner: NodeInner,
    /// The plugged-in scheme.
    pub scheme: Box<dyn FtScheme>,
}

impl NodeActor {
    /// Assemble a node.
    pub fn new(inner: NodeInner, scheme: Box<dyn FtScheme>) -> Self {
        NodeActor { inner, scheme }
    }

    /// Start the CPU on the next available item, if idle. Consumes any
    /// markers that reach queue fronts (markers cost no CPU).
    fn pump(&mut self, ctx: &mut Ctx) {
        let inner = &mut self.inner;
        if !inner.alive || inner.busy {
            return;
        }
        loop {
            // Snapshot candidate edges in deterministic order.
            let edges: Vec<EdgeId> = inner.queues.keys().copied().collect();
            if edges.is_empty() {
                return;
            }
            let n = edges.len();
            let mut picked = None;
            let mut marker_handled = false;
            for off in 0..n {
                let e = edges[(inner.rr + off) % n];
                if inner.paused.contains(&e) {
                    continue;
                }
                let Some(q) = inner.queues.get_mut(&e) else {
                    continue;
                };
                // Pop-and-match instead of peek-then-pop: both arms
                // consume the front item, so popping first needs no
                // unreachable!() fallback for the re-matched front.
                match q.pop_front() {
                    None => continue,
                    Some(StreamItem::Marker(m)) => {
                        self.scheme.on_marker(m, e, inner, ctx);
                        marker_handled = true;
                        break; // rescan: pause set may have changed
                    }
                    Some(StreamItem::Tuple(t)) => {
                        inner.rr = (inner.rr + off + 1) % n;
                        picked = Some((e, t));
                        break;
                    }
                }
            }
            if let Some((edge, tuple)) = picked {
                let op = inner.graph.edge_target(edge);
                let Some(inst) = inner.ops.get(&op) else {
                    // Stale item for an op that moved away during a
                    // reconfiguration; recovery replay covers it.
                    let _ = tuple;
                    continue;
                };
                let cost = inst.cost(&tuple) * inner.cfg.cpu_factor;
                inner.busy = true;
                inner.current = Some((edge, tuple));
                inner.metrics.cpu_busy += cost;
                let me = ctx.self_id();
                ctx.send_in(cost, me, ProcDone);
                return;
            }
            if !marker_handled {
                return; // nothing runnable
            }
        }
    }

    /// Finish the tuple in service: run the operator, publish/route.
    fn complete_processing(&mut self, ctx: &mut Ctx) {
        let inner = &mut self.inner;
        if !inner.alive {
            inner.busy = false;
            inner.current = None;
            return;
        }
        let Some((edge, tuple)) = inner.current.take() else {
            // Stale ProcDone from before a kill/reinstall.
            inner.busy = false;
            return;
        };
        inner.busy = false;
        let op = inner.graph.edge_target(edge);
        if !inner.hosts(op) {
            // Reinstalled while processing; drop silently.
            self.pump(ctx);
            return;
        }
        let graph = Arc::clone(&inner.graph);
        let spec = graph.op(op);
        let port = spec.in_port(edge).unwrap_or(0);
        let mut outs = Outputs::default();
        {
            let Some(inst) = inner.ops.get_mut(&op) else {
                // Un-hosted between the check above and here (cannot
                // happen today, but a 1000-phone run must not die on
                // it if reconfiguration logic ever changes).
                self.pump(ctx);
                return;
            };
            inst.process(&tuple, port, &mut outs, ctx.rng());
        }
        inner.metrics.processed += 1;

        if spec.kind == OpKind::Sink {
            let publish = self.scheme.allow_sink_publish(&tuple, op, inner, ctx);
            if publish {
                let now = ctx.now();
                inner.metrics.record_sink(now, now.since(tuple.entered));
                let links: Vec<InterRegionLink> = inner
                    .inter_region
                    .iter()
                    .copied()
                    .filter(|l| l.src_op == op)
                    .collect();
                for link in links {
                    let msg = InterRegionMsg {
                        dst_op: link.dst_op,
                        value: tuple.value.clone(),
                        bytes: tuple.bytes,
                        entered: None,
                    };
                    let dst = link.dst_actor;
                    let bytes = tuple.bytes;
                    let class = inner.data_class;
                    match (inner.cfg.primary, inner.eth) {
                        // Server baseline: regions live in one datacenter.
                        (PrimaryTransport::Ethernet, Some(eth)) => {
                            let src = ctx.self_id();
                            ctx.send(
                                eth,
                                EthSend {
                                    src,
                                    dst,
                                    class,
                                    bytes,
                                    tag: 0,
                                    payload: Some(payload(msg)),
                                },
                            );
                        }
                        _ => inner.send_cell(ctx, dst, class, bytes, 0, Some(payload(msg))),
                    }
                }
            } else {
                inner.metrics.catchup_discards += 1;
            }
        } else {
            let out_edges = spec.out_edges.clone();
            for (port, value, bytes) in outs.drain() {
                let Some(&out_edge) = out_edges.get(port) else {
                    // Operator emitted on a port the graph never wired:
                    // an operator bug, but one bad tuple must not kill
                    // the phone — drop the output and count it.
                    inner.metrics.routing_drops += 1;
                    ctx.count("node.bad_port_emits", 1);
                    continue;
                };
                let out_tuple = Tuple {
                    id: inner.alloc_tuple_id(),
                    entered: tuple.entered,
                    bytes,
                    value,
                    replay: tuple.replay,
                };
                if self.scheme.on_emit(&out_tuple, out_edge, inner, ctx) {
                    inner.route_item(ctx, out_edge, StreamItem::Tuple(out_tuple));
                }
            }
        }
        self.pump(ctx);
    }

    /// Handle an arriving stream item (remote delivery).
    fn handle_item(&mut self, msg: ItemMsg, ctx: &mut Ctx) {
        if !self.inner.alive {
            return;
        }
        if !self.inner.hosts(self.inner.graph.edge_target(msg.edge)) {
            // In-flight delivery raced a reconfiguration; drop it.
            return;
        }
        if self
            .scheme
            .on_item_arrival(&msg.item, msg.edge, &mut self.inner, ctx)
        {
            self.inner.push_item(msg.edge, msg.item);
        }
        self.pump(ctx);
    }

    /// Handle a fresh external input at a source op.
    fn handle_source_input(&mut self, op: OpId, value: TupleValue, bytes: u64, ctx: &mut Ctx) {
        self.handle_source_input_at(op, value, bytes, None, ctx);
    }

    /// As [`Self::handle_source_input`], optionally preserving an
    /// upstream capture timestamp.
    fn handle_source_input_at(
        &mut self,
        op: OpId,
        value: TupleValue,
        bytes: u64,
        entered: Option<SimTime>,
        ctx: &mut Ctx,
    ) {
        let inner = &mut self.inner;
        if !inner.alive {
            return;
        }
        if !inner.hosts(op) {
            // Sensor feed for a source op that moved away; drop.
            return;
        }
        // Admission control: shed bulky frames while the region's
        // channel is congested (the camera's buffer overflows before
        // mid-pipeline tuples are lost).
        if inner.net_congested && bytes >= 4096 {
            inner.metrics.source_drops += 1;
            return;
        }
        let tuple = Tuple {
            id: inner.alloc_tuple_id(),
            entered: entered.unwrap_or_else(|| ctx.now()),
            bytes,
            value,
            replay: false,
        };
        inner.metrics.source_inputs += 1;
        self.scheme.on_source_input(&tuple, op, inner, ctx);
        inner.push_source_input(op, tuple);
        self.pump(ctx);
    }

    fn apply_install(&mut self, ins: Install, ctx: &mut Ctx) {
        let inner = &mut self.inner;
        // Tear down current hosting.
        let hosted: Vec<OpId> = inner.ops.keys().copied().collect();
        for op in hosted {
            inner.unhost_op(op);
        }
        inner.queues.clear();
        inner.paused.clear();
        inner.busy = false;
        inner.current = None;
        inner.op_slot = ins.op_slot.clone();
        inner.slot_actors = ins.slot_actors.clone();
        for &op in &ins.ops {
            inner.host_op(op);
        }
        match &ins.states {
            InstallStates::Fresh => {}
            InstallStates::FromLocalStore { version } => {
                let states: Vec<(OpId, OpState)> = ins
                    .ops
                    .iter()
                    .filter_map(|&op| inner.store.state(*version, op).map(|st| (op, st.clone())))
                    .collect();
                inner.restore_ops(&states);
            }
            InstallStates::Explicit(states) => {
                inner.restore_ops(states);
            }
        }
        inner.alive = false; // comes alive at InstallReady
        let ready_in = ins.ready_in;
        let me = ctx.self_id();
        ctx.send_in(ready_in, me, InstallReady);
        inner.pending_install = Some(ins);
    }
}

impl Actor for NodeActor {
    fn on_event(&mut self, ev: EventBox, ctx: &mut Ctx) {
        // Network deliveries: unwrap the payload and re-dispatch.
        let ev = match ev.downcast::<WifiRx>() {
            Ok(rx) => {
                let p = rx.payload.clone();
                if let Some(msg) = simnet::payload_as::<ItemMsg>(&p) {
                    self.handle_item(msg.clone(), ctx);
                    return;
                }
                if let Some(ins) = simnet::payload_as::<Install>(&p) {
                    self.apply_install(ins.clone(), ctx);
                    return;
                }
                EventBox::new(rx)
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<CellRx>() {
            Ok(rx) => {
                let p = rx.payload.clone();
                if let Some(msg) = simnet::payload_as::<ItemMsg>(&p) {
                    self.handle_item(msg.clone(), ctx);
                    return;
                }
                if let Some(msg) = simnet::payload_as::<InterRegionMsg>(&p) {
                    let m = msg.clone();
                    self.handle_source_input_at(m.dst_op, m.value, m.bytes, m.entered, ctx);
                    return;
                }
                if let Some(ping) = simnet::payload_as::<Ping>(&p) {
                    if self.inner.alive {
                        let pong = Pong {
                            nonce: ping.nonce,
                            region: self.inner.cfg.region,
                            slot: self.inner.cfg.slot,
                        };
                        self.inner.send_controller(ctx, 32, pong);
                    }
                    return;
                }
                if let Some(ins) = simnet::payload_as::<Install>(&p) {
                    self.apply_install(ins.clone(), ctx);
                    return;
                }
                if let Some(u) = simnet::payload_as::<UpdateRouting>(&p) {
                    if let Some(os) = &u.op_slot {
                        self.inner.op_slot = os.clone();
                        self.inner.unhost_stale();
                    }
                    if let Some(sa) = &u.slot_actors {
                        self.inner.slot_actors = sa.clone();
                    }
                    self.pump(ctx);
                    return;
                }
                if let Some(u) = simnet::payload_as::<SetUrgentEdges>(&p) {
                    for e in &u.edges {
                        if u.on {
                            self.inner.urgent_edges.insert(*e);
                        } else {
                            self.inner.urgent_edges.remove(e);
                        }
                    }
                    return;
                }
                if let Some(u) = simnet::payload_as::<UpdateInterRegion>(&p) {
                    self.inner.inter_region = u.links.clone();
                    return;
                }
                EventBox::new(rx)
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<EthRx>() {
            Ok(rx) => {
                let p = rx.payload.clone();
                if let Some(msg) = simnet::payload_as::<ItemMsg>(&p) {
                    self.handle_item(msg.clone(), ctx);
                    return;
                }
                EventBox::new(rx)
            }
            Err(e) => e,
        };

        simkernel::match_event!(ev,
            _p: ProcDone => {
                self.complete_processing(ctx);
            },
            s: SourceEmit => {
                self.handle_source_input(s.op, s.value, s.bytes, ctx);
            },
            _k: Kill => {
                self.inner.alive = false;
                self.inner.busy = false;
                self.inner.current = None;
                self.inner.ctl_retries.clear();
            },
            _r: Reboot => {
                let inner = &mut self.inner;
                inner.alive = true;
                let hosted: Vec<OpId> = inner.ops.keys().copied().collect();
                for op in hosted {
                    inner.unhost_op(op);
                }
                inner.clear_queues();
                inner.abort_current();
                inner.ctl_retries.clear();
                let reg = RegisterNode {
                    region: inner.cfg.region,
                    slot: inner.cfg.slot,
                };
                inner.send_controller_tracked(ctx, 64, reg);
            },
            ins: Install => {
                self.apply_install(ins, ctx);
            },
            _r: InstallReady => {
                if self.inner.pending_install.take().is_some() {
                    self.inner.alive = true;
                    self.scheme.on_install(&mut self.inner, ctx);
                    self.pump(ctx);
                }
            },
            u: UpdateRouting => {
                if let Some(os) = u.op_slot {
                    self.inner.op_slot = os;
                    self.inner.unhost_stale();
                }
                if let Some(sa) = u.slot_actors {
                    self.inner.slot_actors = sa;
                }
                self.pump(ctx);
            },
            u: SetUrgentEdges => {
                for e in u.edges {
                    if u.on {
                        self.inner.urgent_edges.insert(e);
                    } else {
                        self.inner.urgent_edges.remove(&e);
                    }
                }
            },
            u: UpdateInterRegion => {
                self.inner.inter_region = u.links;
            },
            c: simnet::wifi::WifiCongestion => {
                self.inner.net_congested = c.on;
            },
            d: TxDone => {
                if self.inner.take_pending(d.tag).is_none() && !self.inner.ctl_retry_complete(d.tag)
                {
                    let consumed = self.scheme.on_custom(EventBox::new(d), &mut self.inner, ctx);
                    let _ = consumed;
                }
                self.pump(ctx);
            },
            f: TxFailed => {
                if let Some((slot, _edge)) = self.inner.take_pending(f.tag) {
                    let report = ReportDead {
                        region: self.inner.cfg.region,
                        slot,
                        observed_by: self.inner.cfg.slot,
                    };
                    self.inner.send_controller(ctx, 48, report);
                } else if !self.inner.ctl_retry_complete(f.tag) {
                    self.scheme.on_custom(EventBox::new(f), &mut self.inner, ctx);
                }
                self.pump(ctx);
            },
            d: simnet::TxDropped => {
                // Congestion loss, not death: the tuple is gone (replay
                // covers it) but the peer is alive — no dead report.
                if self.inner.take_pending(d.tag).is_some() {
                    self.inner.metrics.tx_queue_drops += 1;
                    ctx.count("node.tx_queue_drops", 1);
                } else {
                    self.scheme.on_custom(EventBox::new(d), &mut self.inner, ctx);
                }
                self.pump(ctx);
            },
            s: simnet::TxSevered => {
                // Partition loss: the path is cut, not the peer. Treat
                // a tracked tuple like congestion (replay covers it);
                // anything else is a scheme RPC that may want to retry
                // with backoff.
                if self.inner.take_pending(s.tag).is_some() {
                    self.inner.metrics.tx_severed += 1;
                    ctx.count("node.tx_severed", 1);
                } else if !self.inner.ctl_retry_severed(s.tag, ctx) {
                    self.scheme.on_custom(EventBox::new(s), &mut self.inner, ctx);
                }
                self.pump(ctx);
            },
            r: CtlRetryFire => {
                self.inner.ctl_retry_fire(r.tag, ctx);
                self.pump(ctx);
            },
            @else other => {
                let consumed = self.scheme.on_custom(other, &mut self.inner, ctx);
                let _ = consumed;
                self.pump(ctx);
            }
        );
    }

    fn name(&self) -> String {
        format!(
            "node r{} s{} [{}]",
            self.inner.cfg.region,
            self.inner.cfg.slot,
            self.scheme.name()
        )
    }

    impl_actor_any!();
}

/// Convenience: time of latest sink sample (test helper).
pub fn last_sink_time(m: &NodeMetrics) -> Option<SimTime> {
    m.sink_samples.last().map(|s| s.at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft::NullScheme;
    use crate::graph::OpKind;
    use crate::ops::{Counter, Relay};
    use crate::tuple::value;
    use simkernel::Sim;
    use simnet::cellular::{CellConfig, CellularNet};
    use simnet::wifi::{WifiConfig, WifiMedium};

    /// Records control messages arriving at "the controller".
    #[derive(Default)]
    struct ControllerStub {
        dead_reports: Vec<(usize, u32, u32)>,
        pongs: Vec<u64>,
    }

    impl Actor for ControllerStub {
        fn on_event(&mut self, ev: EventBox, _ctx: &mut Ctx) {
            if let Ok(rx) = ev.downcast::<CellRx>() {
                if let Some(r) = simnet::payload_as::<ReportDead>(&rx.payload) {
                    self.dead_reports.push((r.region, r.slot, r.observed_by));
                } else if let Some(p) = simnet::payload_as::<Pong>(&rx.payload) {
                    self.pongs.push(p.nonce);
                }
            }
        }
        impl_actor_any!();
    }

    struct Rig {
        sim: Sim,
        nodes: Vec<ActorId>,
        wifi: ActorId,
        cell: ActorId,
        controller: ActorId,
        graph: Arc<QueryGraph>,
    }

    /// Chain S → A → K on three nodes (slots 0,1,2) plus one idle slot.
    fn chain_rig(loss: f64) -> Rig {
        let mut g = QueryGraph::new();
        let s = g.add_op("S", OpKind::Source, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        let a = g.add_op("A", OpKind::Compute, || {
            Box::new(Counter::new(SimDuration::from_millis(100), 1))
        });
        let k = g.add_op("K", OpKind::Sink, || {
            Box::new(Relay::new(SimDuration::from_millis(1)))
        });
        g.connect(s, a);
        g.connect(a, k);
        g.validate().unwrap();
        let graph = Arc::new(g);

        let mut sim = Sim::new(11);
        let controller = sim.add_actor(Box::<ControllerStub>::default());

        // Placeholder ids resolved after networks are added.
        let wifi_med = WifiMedium::new(WifiConfig {
            rate_bps: 2_500_000.0,
            loss,
            ..WifiConfig::default()
        });
        let mut cell_net = CellularNet::new(CellConfig::default());
        cell_net.register_with_rates(controller, 1e9, 1e9);

        // Create node actors first (they need wifi/cell ids — add nets
        // first by reserving: easiest is nets first).
        let wifi = sim.add_actor(Box::new(WifiMedium::new(WifiConfig::default())));
        let cell = sim.add_actor(Box::new(CellularNet::new(CellConfig::default())));
        let _ = (&wifi_med, &cell_net);

        let slots = 4u32;
        let mut nodes = Vec::new();
        for slot in 0..slots {
            let cfg = NodeConfig {
                region: 0,
                slot,
                cpu_factor: 1.0,
                source_queue_cap: 10,
                primary: PrimaryTransport::Wifi,
            };
            let inner = NodeInner::new(cfg, Arc::clone(&graph), wifi, cell, controller);
            let id = sim.add_actor(Box::new(NodeActor::new(inner, Box::new(NullScheme))));
            nodes.push(id);
        }

        // Rebuild networks with real members (replace the actors' state).
        {
            let med = sim.actor_mut::<WifiMedium>(wifi);
            *med = {
                let mut m = WifiMedium::new(WifiConfig {
                    rate_bps: 2_500_000.0,
                    loss,
                    ..WifiConfig::default()
                });
                for &n in &nodes {
                    m.add_member(n);
                }
                m
            };
        }
        {
            let net = sim.actor_mut::<CellularNet>(cell);
            let mut n = CellularNet::new(CellConfig::default());
            n.register_with_rates(controller, 1e9, 1e9);
            for &nd in &nodes {
                n.register(nd);
            }
            *net = n;
        }

        // Wire placement: S→0, A→1, K→2; slot 3 idle.
        let op_slot = vec![0u32, 1, 2];
        for (slot, &nid) in nodes.iter().enumerate() {
            let na = sim.actor_mut::<NodeActor>(nid);
            na.inner.op_slot = op_slot.clone();
            na.inner.slot_actors = nodes.clone();
            match slot {
                0 => na.inner.host_op(OpId(0)),
                1 => na.inner.host_op(OpId(1)),
                2 => na.inner.host_op(OpId(2)),
                _ => {}
            }
        }

        Rig {
            sim,
            nodes,
            wifi,
            cell,
            controller,
            graph,
        }
    }

    fn feed(rig: &mut Rig, count: usize, every_ms: u64, bytes: u64) {
        for i in 0..count {
            rig.sim.schedule_at(
                SimTime::from_millis(every_ms * i as u64),
                rig.nodes[0],
                SourceEmit {
                    op: OpId(0),
                    value: value(i as u64),
                    bytes,
                },
            );
        }
    }

    #[test]
    fn pipeline_delivers_to_sink_with_latency() {
        let mut rig = chain_rig(0.0);
        feed(&mut rig, 5, 500, 10_000);
        rig.sim.run();
        let sinknode = rig.sim.actor::<NodeActor>(rig.nodes[2]);
        let m = &sinknode.inner.metrics;
        assert_eq!(m.sink_samples.len(), 5, "all tuples reach the sink");
        for s in &m.sink_samples {
            // 1 ms source + ~32+ ms wifi hop + 100 ms count + hop + 1 ms sink
            assert!(s.latency >= SimDuration::from_millis(100));
            assert!(s.latency < SimDuration::from_secs(2));
        }
        // Intermediate node processed every tuple.
        let mid = rig.sim.actor::<NodeActor>(rig.nodes[1]);
        assert_eq!(mid.inner.metrics.processed, 5);
    }

    #[test]
    fn lossy_wifi_still_delivers_reliable_tuples() {
        let mut rig = chain_rig(0.2);
        feed(&mut rig, 10, 500, 5_000);
        rig.sim.run();
        let sinknode = rig.sim.actor::<NodeActor>(rig.nodes[2]);
        assert_eq!(sinknode.inner.metrics.sink_samples.len(), 10);
    }

    #[test]
    fn source_queue_cap_drops_oldest() {
        let mut rig = chain_rig(0.0);
        // Burst of 30 at t=0 with cap 10.
        for i in 0..30 {
            rig.sim.schedule_at(
                SimTime::ZERO,
                rig.nodes[0],
                SourceEmit {
                    op: OpId(0),
                    value: value(i as u64),
                    bytes: 100,
                },
            );
        }
        rig.sim.run();
        let src = rig.sim.actor::<NodeActor>(rig.nodes[0]);
        // First tuple enters service immediately; of the remaining 29
        // queued, only 10 fit.
        assert!(
            src.inner.metrics.source_drops >= 19,
            "drops = {}",
            src.inner.metrics.source_drops
        );
        let sink = rig.sim.actor::<NodeActor>(rig.nodes[2]);
        assert!(sink.inner.metrics.sink_samples.len() <= 11);
    }

    #[test]
    fn killed_downstream_triggers_dead_report() {
        let mut rig = chain_rig(0.0);
        rig.sim.schedule_at(SimTime::ZERO, rig.nodes[1], Kill);
        {
            let wifi = rig.wifi;
            let dead = rig.nodes[1];
            rig.sim
                .actor_mut::<WifiMedium>(wifi)
                .set_link_state(dead, simnet::LinkState::Dead);
        }
        feed(&mut rig, 1, 100, 1000);
        rig.sim.run();
        let ctrl = rig.sim.actor::<ControllerStub>(rig.controller);
        assert_eq!(
            ctrl.dead_reports,
            vec![(0, 1, 0)],
            "source reports slot 1 dead"
        );
        let sink = rig.sim.actor::<NodeActor>(rig.nodes[2]);
        assert!(sink.inner.metrics.sink_samples.is_empty());
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut rig = chain_rig(0.0);
        let cell = rig.cell;
        let target = rig.nodes[0];
        let controller = rig.controller;
        rig.sim.schedule_at(
            SimTime::ZERO,
            cell,
            CellSend {
                src: controller,
                dst: target,
                class: TrafficClass::Control,
                bytes: 32,
                tag: 0,
                payload: Some(payload(Ping { nonce: 99 })),
            },
        );
        rig.sim.run();
        let ctrl = rig.sim.actor::<ControllerStub>(rig.controller);
        assert_eq!(ctrl.pongs, vec![99]);
    }

    #[test]
    fn dead_node_does_not_pong() {
        let mut rig = chain_rig(0.0);
        rig.sim.schedule_at(SimTime::ZERO, rig.nodes[0], Kill);
        let cell = rig.cell;
        let target = rig.nodes[0];
        let controller = rig.controller;
        rig.sim.schedule_at(
            SimTime::from_millis(1),
            cell,
            CellSend {
                src: controller,
                dst: target,
                class: TrafficClass::Control,
                bytes: 32,
                tag: 0,
                payload: Some(payload(Ping { nonce: 1 })),
            },
        );
        rig.sim.run();
        assert!(rig
            .sim
            .actor::<ControllerStub>(rig.controller)
            .pongs
            .is_empty());
    }

    #[test]
    fn install_restores_counter_state_from_explicit() {
        let mut rig = chain_rig(0.0);
        feed(&mut rig, 3, 200, 1000);
        rig.sim.run();
        // Snapshot A's counter (should be 3).
        let (snap, op_slot, slot_actors) = {
            let mid = rig.sim.actor::<NodeActor>(rig.nodes[1]);
            let snaps = mid.inner.snapshot_ops();
            assert_eq!(snaps.len(), 1);
            (
                snaps[0].1.clone(),
                mid.inner.op_slot.clone(),
                mid.inner.slot_actors.clone(),
            )
        };
        // Install op A on idle slot 3, restoring the snapshot.
        let mut new_op_slot = op_slot.clone();
        new_op_slot[1] = 3;
        rig.sim.schedule_at(
            rig.sim.now(),
            rig.nodes[3],
            Install {
                ops: vec![OpId(1)],
                states: InstallStates::Explicit(vec![(OpId(1), snap)]),
                op_slot: new_op_slot.clone(),
                slot_actors: slot_actors.clone(),
                ready_in: SimDuration::from_secs(1),
            },
        );
        // Everyone learns the new routing.
        for &n in &rig.nodes {
            rig.sim.schedule_at(
                rig.sim.now(),
                n,
                UpdateRouting {
                    op_slot: Some(new_op_slot.clone()),
                    slot_actors: Some(slot_actors.clone()),
                },
            );
        }
        rig.sim.run();
        {
            let repl = rig.sim.actor::<NodeActor>(rig.nodes[3]);
            assert!(repl.inner.alive);
            assert!(repl.inner.hosts(OpId(1)));
            let c = repl.inner.ops[&OpId(1)].as_ref().state_bytes();
            assert!(c >= 8);
        }
        // Traffic now flows through the replacement.
        feed(&mut rig, 2, 100, 1000);
        rig.sim.run();
        let repl = rig.sim.actor::<NodeActor>(rig.nodes[3]);
        assert_eq!(repl.inner.metrics.processed, 2);
        let sink = rig.sim.actor::<NodeActor>(rig.nodes[2]);
        assert_eq!(sink.inner.metrics.sink_samples.len(), 5);
    }

    #[test]
    fn graph_is_shared_not_cloned() {
        let rig = chain_rig(0.0);
        assert!(Arc::strong_count(&rig.graph) >= 5);
    }

    #[test]
    fn urgent_edge_routes_via_cellular() {
        let mut rig = chain_rig(0.0);
        // Put edge A→K (edge 1) into urgent mode at the emitting node.
        rig.sim.schedule_at(
            SimTime::ZERO,
            rig.nodes[1],
            SetUrgentEdges {
                edges: vec![EdgeId(1)],
                on: true,
            },
        );
        feed(&mut rig, 2, 100, 1000);
        rig.sim.run();
        let sink = rig.sim.actor::<NodeActor>(rig.nodes[2]);
        assert_eq!(sink.inner.metrics.sink_samples.len(), 2);
        // Cellular network carried the (8-byte counter) data tuples.
        let cellnet = rig.sim.actor::<CellularNet>(rig.cell);
        assert!(cellnet.stats().payload_bytes(TrafficClass::Data) >= 16);
        assert_eq!(cellnet.stats().messages(TrafficClass::Data), 2);
        // Latency via the slow cellular uplink exceeds WiFi's.
        let lat = sink.inner.metrics.sink_samples[0].latency;
        assert!(lat > SimDuration::from_millis(150), "lat = {lat}");
    }
}
