//! In-memory checkpoint and preservation storage.
//!
//! Every phone carries a [`CheckpointStore`]: versioned operator-state
//! snapshots plus the preserved source-input log since the most recent
//! checkpoint (MRC). In MobiStreams *every* node in a region holds a
//! copy ("this may seem like overkill, but is critical" — §III-B);
//! baselines use the same structure for local or peer copies.

use std::collections::BTreeMap;

use crate::graph::OpId;
use crate::operator::OpState;
use crate::tuple::Tuple;

/// A complete (per-node view of a) checkpoint version.
#[derive(Default)]
pub struct CheckpointVersion {
    /// Operator states captured in this version.
    pub states: BTreeMap<OpId, OpState>,
    /// Serialized size of each operator's state.
    pub state_bytes: BTreeMap<OpId, u64>,
    /// True once the whole region committed this version.
    pub complete: bool,
}

impl CheckpointVersion {
    /// Total serialized bytes in this version.
    pub fn total_bytes(&self) -> u64 {
        self.state_bytes.values().sum()
    }
}

/// Preserved source input log for one source operator.
#[derive(Default, Clone)]
pub struct SourceLog {
    /// Tuples since MRC, in arrival order.
    pub tuples: Vec<Tuple>,
}

impl SourceLog {
    /// Bytes retained.
    pub fn bytes(&self) -> u64 {
        self.tuples.iter().map(|t| t.bytes).sum()
    }
}

/// Per-node durable storage (phone flash in the paper; plain memory in
/// the simulation — contents vanish when the node "fails", except for
/// the `local` baseline which models restartable nodes).
#[derive(Default)]
pub struct CheckpointStore {
    versions: BTreeMap<u64, CheckpointVersion>,
    source_logs: BTreeMap<(u64, OpId), SourceLog>,
    /// Total bytes ever written (storage-wear accounting).
    pub bytes_written: u64,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operator's state under `version`.
    pub fn put_state(&mut self, version: u64, op: OpId, state: OpState, bytes: u64) {
        let v = self.versions.entry(version).or_default();
        v.states.insert(op, state);
        v.state_bytes.insert(op, bytes);
        self.bytes_written += bytes;
    }

    /// Mark `version` complete (region-wide commit).
    pub fn mark_complete(&mut self, version: u64) {
        self.versions.entry(version).or_default().complete = true;
    }

    /// Fetch one operator's state from `version`.
    pub fn state(&self, version: u64, op: OpId) -> Option<&OpState> {
        self.versions.get(&version)?.states.get(&op)
    }

    /// The newest complete version, if any.
    pub fn latest_complete(&self) -> Option<u64> {
        self.versions
            .iter()
            .rev()
            .find(|(_, v)| v.complete)
            .map(|(ver, _)| *ver)
    }

    /// A version's record.
    pub fn version(&self, version: u64) -> Option<&CheckpointVersion> {
        self.versions.get(&version)
    }

    /// Append a preserved source tuple for (`version`, `op`).
    pub fn preserve_input(&mut self, version: u64, op: OpId, tuple: Tuple) {
        let bytes = tuple.bytes;
        self.source_logs
            .entry((version, op))
            .or_default()
            .tuples
            .push(tuple);
        self.bytes_written += bytes;
    }

    /// The preserved log for (`version`, `op`).
    pub fn source_log(&self, version: u64, op: OpId) -> Option<&SourceLog> {
        self.source_logs.get(&(version, op))
    }

    /// Bytes currently retained in preserved source-input logs only
    /// (the paper's Fig 10a source-preservation metric).
    pub fn preserved_input_bytes(&self) -> u64 {
        self.source_logs.values().map(|l| l.bytes()).sum()
    }

    /// Move log entries for the given tuple ids from `old` to `new`
    /// epoch — used when a checkpoint token is emitted while inputs are
    /// still queued (they are post-token, so they belong to the new
    /// epoch's replay set).
    pub fn retag_inputs(
        &mut self,
        old: u64,
        new: u64,
        op: crate::graph::OpId,
        ids: &std::collections::BTreeSet<u64>,
    ) {
        if old == new || ids.is_empty() {
            return;
        }
        let Some(log) = self.source_logs.get_mut(&(old, op)) else {
            return;
        };
        let mut moved = Vec::new();
        log.tuples.retain(|t| {
            if ids.contains(&t.id) {
                moved.push(t.clone());
                false
            } else {
                true
            }
        });
        if !moved.is_empty() {
            self.source_logs
                .entry((new, op))
                .or_default()
                .tuples
                .extend(moved);
        }
    }

    /// Bytes currently retained (states of kept versions + logs).
    pub fn retained_bytes(&self) -> u64 {
        let states: u64 = self.versions.values().map(|v| v.total_bytes()).sum();
        let logs: u64 = self.source_logs.values().map(|l| l.bytes()).sum();
        states + logs
    }

    /// Drop all versions `< keep` and logs for epochs `< keep` — the
    /// paper keeps data only "until the next checkpoint of the region is
    /// completed".
    pub fn gc_before(&mut self, keep: u64) {
        self.versions.retain(|&v, _| v >= keep);
        self.source_logs.retain(|&(v, _), _| v >= keep);
    }

    /// Wipe everything (node failure without durable storage).
    pub fn wipe(&mut self) {
        self.versions.clear();
        self.source_logs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::op_state;
    use crate::tuple::value;
    use simkernel::SimTime;

    fn tup(id: u64, bytes: u64) -> Tuple {
        Tuple::new(id, SimTime::ZERO, bytes, value(()))
    }

    #[test]
    fn put_and_fetch_state() {
        let mut s = CheckpointStore::new();
        s.put_state(1, OpId(0), op_state(42u64), 100);
        s.put_state(1, OpId(1), op_state(43u64), 200);
        assert_eq!(s.version(1).unwrap().total_bytes(), 300);
        let st = s.state(1, OpId(0)).unwrap();
        assert_eq!((**st).as_any().downcast_ref::<u64>(), Some(&42));
        assert!(s.state(2, OpId(0)).is_none());
        assert_eq!(s.bytes_written, 300);
    }

    #[test]
    fn latest_complete_skips_partial() {
        let mut s = CheckpointStore::new();
        s.put_state(1, OpId(0), op_state(()), 10);
        s.mark_complete(1);
        s.put_state(2, OpId(0), op_state(()), 10);
        // v2 not marked complete — recovery must use v1.
        assert_eq!(s.latest_complete(), Some(1));
        s.mark_complete(2);
        assert_eq!(s.latest_complete(), Some(2));
    }

    #[test]
    fn preservation_log_and_gc() {
        let mut s = CheckpointStore::new();
        s.preserve_input(1, OpId(0), tup(1, 50));
        s.preserve_input(1, OpId(0), tup(2, 50));
        s.preserve_input(2, OpId(0), tup(3, 70));
        assert_eq!(s.source_log(1, OpId(0)).unwrap().tuples.len(), 2);
        assert_eq!(s.source_log(1, OpId(0)).unwrap().bytes(), 100);
        assert_eq!(s.retained_bytes(), 170);
        s.gc_before(2);
        assert!(s.source_log(1, OpId(0)).is_none());
        assert_eq!(s.retained_bytes(), 70);
    }

    #[test]
    fn wipe_clears_but_keeps_wear_counter() {
        let mut s = CheckpointStore::new();
        s.put_state(1, OpId(0), op_state(()), 10);
        s.preserve_input(1, OpId(0), tup(1, 5));
        s.wipe();
        assert_eq!(s.retained_bytes(), 0);
        assert!(s.latest_complete().is_none());
        assert_eq!(s.bytes_written, 15);
    }

    #[test]
    fn empty_store() {
        let s = CheckpointStore::new();
        assert_eq!(s.latest_complete(), None);
        assert_eq!(s.retained_bytes(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::operator::op_state;
    use crate::tuple::value;
    use proptest::prelude::*;
    use simkernel::SimTime;

    proptest! {
        /// GC keeps exactly the versions/epochs ≥ keep and the retained
        /// byte count stays consistent with what survives.
        #[test]
        fn prop_gc_keeps_suffix(
            writes in prop::collection::vec((0u64..6, 0u32..3, 1u64..500), 1..40),
            keep in 0u64..6,
        ) {
            let mut s = CheckpointStore::new();
            for &(v, op, bytes) in &writes {
                s.put_state(v, OpId(op), op_state(()), bytes);
                s.preserve_input(v, OpId(op), Tuple::new(1, SimTime::ZERO, bytes, value(())));
            }
            let expect_states: u64 = {
                // put_state overwrites per (version, op): keep last write.
                let mut last = std::collections::BTreeMap::new();
                for &(v, op, bytes) in &writes {
                    last.insert((v, op), bytes);
                }
                last.iter().filter(|((v, _), _)| *v >= keep).map(|(_, &b)| b).sum()
            };
            let expect_logs: u64 = writes
                .iter()
                .filter(|&&(v, _, _)| v >= keep)
                .map(|&(_, _, b)| b)
                .sum();
            s.gc_before(keep);
            prop_assert_eq!(s.retained_bytes(), expect_states + expect_logs);
            prop_assert_eq!(s.preserved_input_bytes(), expect_logs);
            for &(v, op, _) in &writes {
                prop_assert_eq!(s.state(v, OpId(op)).is_some(), v >= keep);
            }
        }

        /// retag moves exactly the requested ids and loses nothing.
        #[test]
        fn prop_retag_is_lossless(
            n in 1usize..30,
            pick in prop::collection::vec(any::<bool>(), 1..30),
        ) {
            let n = n.min(pick.len());
            let mut s = CheckpointStore::new();
            for i in 0..n {
                s.preserve_input(1, OpId(0), Tuple::new(i as u64, SimTime::ZERO, 10, value(())));
            }
            let ids: std::collections::BTreeSet<u64> = (0..n as u64)
                .filter(|&i| pick[i as usize])
                .collect();
            s.retag_inputs(1, 2, OpId(0), &ids);
            let old = s.source_log(1, OpId(0)).map(|l| l.tuples.len()).unwrap_or(0);
            let new = s.source_log(2, OpId(0)).map(|l| l.tuples.len()).unwrap_or(0);
            prop_assert_eq!(old + new, n);
            prop_assert_eq!(new, ids.len());
        }
    }
}
