//! Tuples — the unit of data flowing between operators — and markers,
//! the in-band control records used for checkpoint tokens.

use std::sync::Arc;

use simkernel::{Event, SimTime};

/// Reference-counted, type-erased tuple content. Cloning a tuple for
/// replication, preservation or replay never copies the content.
pub type TupleValue = Arc<dyn Event>;

/// Build a [`TupleValue`] from a concrete type.
pub fn value<T: Event>(v: T) -> TupleValue {
    Arc::new(v)
}

/// One unit of stream data.
#[derive(Debug, Clone)]
pub struct Tuple {
    /// Unique id: `(origin_node_slot << 40) | per-node sequence`.
    pub id: u64,
    /// When the tuple (or its earliest ancestor) entered the system —
    /// the paper measures latency as enter-to-leave time.
    pub entered: SimTime,
    /// Serialized size in bytes (drives network cost).
    pub bytes: u64,
    /// Content.
    pub value: TupleValue,
    /// True while the tuple (or its source ancestor) is being replayed
    /// during catch-up; sinks discard replay results (§III-D). Derived
    /// tuples inherit the flag from the input that produced them.
    pub replay: bool,
}

impl Tuple {
    /// Construct a fresh source tuple.
    pub fn new(id: u64, entered: SimTime, bytes: u64, value: TupleValue) -> Self {
        Tuple {
            id,
            entered,
            bytes,
            value,
            replay: false,
        }
    }

    /// Downcast the content.
    pub fn value_as<T: 'static>(&self) -> Option<&T> {
        (*self.value).as_any().downcast_ref::<T>()
    }
}

/// An in-band control record. Markers flow through the same per-edge
/// FIFO queues as tuples, so "every tuple before the marker" is a
/// well-defined cut — exactly what the paper's token needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// Scheme-defined kind (e.g. [`Marker::CHECKPOINT_TOKEN`]).
    pub kind: u32,
    /// Scheme-defined version (checkpoint number for tokens).
    pub version: u64,
    /// Wire size; the paper's token is "less than 1% of tuple size".
    pub bytes: u64,
}

impl Marker {
    /// The MobiStreams checkpoint token kind.
    pub const CHECKPOINT_TOKEN: u32 = 1;

    /// A checkpoint token for checkpoint `version`.
    pub fn token(version: u64) -> Self {
        Marker {
            kind: Marker::CHECKPOINT_TOKEN,
            version,
            bytes: 16,
        }
    }
}

/// What flows on an edge: data or control.
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// A data tuple.
    Tuple(Tuple),
    /// An in-band marker.
    Marker(Marker),
}

impl StreamItem {
    /// Wire size of the item.
    pub fn bytes(&self) -> u64 {
        match self {
            StreamItem::Tuple(t) => t.bytes,
            StreamItem::Marker(m) => m.bytes,
        }
    }

    /// The tuple inside, if data.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Marker(_) => None,
        }
    }

    /// True for markers.
    pub fn is_marker(&self) -> bool {
        matches!(self, StreamItem::Marker(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_value_downcast() {
        let t = Tuple::new(1, SimTime::ZERO, 100, value(42u32));
        assert_eq!(t.value_as::<u32>(), Some(&42));
        assert!(t.value_as::<String>().is_none());
    }

    #[test]
    fn tuple_clone_shares_content() {
        let v = value(vec![1u8; 1000]);
        let t = Tuple::new(1, SimTime::ZERO, 1000, v.clone());
        let t2 = t.clone();
        assert_eq!(Arc::strong_count(&v), 3);
        assert_eq!(t2.bytes, 1000);
    }

    #[test]
    fn marker_token() {
        let m = Marker::token(7);
        assert_eq!(m.kind, Marker::CHECKPOINT_TOKEN);
        assert_eq!(m.version, 7);
        assert!(m.bytes < 100, "tokens are tiny");
    }

    #[test]
    fn stream_item_accessors() {
        let t = StreamItem::Tuple(Tuple::new(1, SimTime::ZERO, 64, value(())));
        assert_eq!(t.bytes(), 64);
        assert!(!t.is_marker());
        assert!(t.as_tuple().is_some());
        let m = StreamItem::Marker(Marker::token(1));
        assert!(m.is_marker());
        assert!(m.as_tuple().is_none());
        assert_eq!(m.bytes(), 16);
    }
}
