//! Builtin operators: the small reusable vocabulary used by tests, the
//! quickstart example, and as building blocks inside the applications.

use std::collections::VecDeque;

use simkernel::{SimDuration, SimRng};

use crate::operator::{op_state, OpState, Operator, Outputs};
use crate::tuple::{value, Tuple, TupleValue};

/// Forwards every input to every output port, unchanged. Stateless.
pub struct Relay {
    cost: SimDuration,
    fanout: usize,
}

impl Relay {
    /// Relay with one output port.
    pub fn new(cost: SimDuration) -> Self {
        Relay { cost, fanout: 1 }
    }

    /// Relay duplicating to `fanout` output ports.
    pub fn with_fanout(cost: SimDuration, fanout: usize) -> Self {
        Relay { cost, fanout }
    }
}

impl Operator for Relay {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        for port in 0..self.fanout {
            out.emit(port, tuple.value.clone(), tuple.bytes);
        }
    }

    fn cost(&self, _tuple: &Tuple) -> SimDuration {
        self.cost
    }
}

/// Applies a pure function to each tuple. Stateless.
#[allow(clippy::type_complexity)]
pub struct FnMap {
    f: Box<dyn Fn(&Tuple) -> Option<(TupleValue, u64)> + Send>,
    cost: SimDuration,
}

impl FnMap {
    /// Map each tuple through `f`; `None` filters the tuple out.
    pub fn new(
        cost: SimDuration,
        f: impl Fn(&Tuple) -> Option<(TupleValue, u64)> + Send + 'static,
    ) -> Self {
        FnMap {
            f: Box::new(f),
            cost,
        }
    }
}

impl Operator for FnMap {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        if let Some((v, bytes)) = (self.f)(tuple) {
            out.emit(0, v, bytes);
        }
    }

    fn cost(&self, _tuple: &Tuple) -> SimDuration {
        self.cost
    }
}

/// Counts tuples and periodically emits the running count. Stateful.
#[derive(Debug)]
pub struct Counter {
    /// Tuples seen since construction/restore.
    pub count: u64,
    emit_every: u64,
    cost: SimDuration,
    /// Extra bytes reported as state (models big model state riding
    /// along with small logical state — e.g. the paper's 8 MB node).
    pub state_padding: u64,
}

/// Snapshot payload of [`Counter`].
#[derive(Debug, Clone)]
pub struct CounterState(pub u64);

impl Counter {
    /// Counter that emits every `emit_every` inputs.
    pub fn new(cost: SimDuration, emit_every: u64) -> Self {
        Counter {
            count: 0,
            emit_every: emit_every.max(1),
            cost,
            state_padding: 0,
        }
    }

    /// Inflate the reported state size (checkpoint experiments).
    pub fn with_state_padding(mut self, bytes: u64) -> Self {
        self.state_padding = bytes;
        self
    }
}

impl Operator for Counter {
    fn process(&mut self, _tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        self.count += 1;
        if self.count.is_multiple_of(self.emit_every) {
            out.emit(0, value(self.count), 8);
        }
    }

    fn cost(&self, _tuple: &Tuple) -> SimDuration {
        self.cost
    }

    fn state_bytes(&self) -> u64 {
        8 + self.state_padding
    }

    fn snapshot(&self) -> OpState {
        op_state(CounterState(self.count))
    }

    fn restore(&mut self, state: &OpState) {
        // Wrong-typed state (a malformed explicit install shipped over
        // the network) is ignored rather than panicking the phone.
        if let Some(st) = state.as_any().downcast_ref::<CounterState>() {
            self.count = st.0;
        }
    }
}

/// Keeps tuples whose value passes a predicate. Stateless.
pub struct Filter {
    pred: Box<dyn Fn(&Tuple) -> bool + Send>,
    cost: SimDuration,
}

impl Filter {
    /// Filter by `pred`.
    pub fn new(cost: SimDuration, pred: impl Fn(&Tuple) -> bool + Send + 'static) -> Self {
        Filter {
            pred: Box::new(pred),
            cost,
        }
    }
}

impl Operator for Filter {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        if (self.pred)(tuple) {
            out.emit(0, tuple.value.clone(), tuple.bytes);
        }
    }

    fn cost(&self, _tuple: &Tuple) -> SimDuration {
        self.cost
    }
}

/// Two-input key join with bounded buffers. Stateful.
///
/// Tuples on each port are keyed by a caller-supplied extractor; when
/// both sides of a key have arrived, a combined output is emitted and
/// the entries are consumed. Buffers are FIFO-bounded to `window`.
#[allow(clippy::type_complexity)]
pub struct KeyJoin {
    key: Box<dyn Fn(&Tuple) -> u64 + Send>,
    combine: Box<dyn Fn(&Tuple, &Tuple) -> (TupleValue, u64) + Send>,
    window: usize,
    cost: SimDuration,
    left: VecDeque<(u64, Tuple)>,
    right: VecDeque<(u64, Tuple)>,
    state_bytes_hint: u64,
}

/// Snapshot payload of [`KeyJoin`]: the buffered tuples.
#[derive(Debug, Clone)]
pub struct KeyJoinState {
    /// Buffered (key, tuple) pairs, left port.
    pub left: Vec<(u64, Tuple)>,
    /// Buffered (key, tuple) pairs, right port.
    pub right: Vec<(u64, Tuple)>,
}

impl KeyJoin {
    /// Join port 0 and port 1 streams on a key.
    pub fn new(
        cost: SimDuration,
        window: usize,
        key: impl Fn(&Tuple) -> u64 + Send + 'static,
        combine: impl Fn(&Tuple, &Tuple) -> (TupleValue, u64) + Send + 'static,
    ) -> Self {
        KeyJoin {
            key: Box::new(key),
            combine: Box::new(combine),
            window: window.max(1),
            cost,
            left: VecDeque::new(),
            right: VecDeque::new(),
            state_bytes_hint: 0,
        }
    }

    /// Inflate the reported state size.
    pub fn with_state_bytes_hint(mut self, bytes: u64) -> Self {
        self.state_bytes_hint = bytes;
        self
    }

    /// Buffered tuples (test introspection).
    pub fn buffered(&self) -> (usize, usize) {
        (self.left.len(), self.right.len())
    }
}

impl Operator for KeyJoin {
    fn process(&mut self, tuple: &Tuple, port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        let k = (self.key)(tuple);
        let (mine, theirs) = if port == 0 {
            (&mut self.left, &mut self.right)
        } else {
            (&mut self.right, &mut self.left)
        };
        if let Some((_, other)) = theirs
            .iter()
            .position(|(ok, _)| *ok == k)
            .and_then(|pos| theirs.remove(pos))
        {
            let (l, r) = if port == 0 {
                (tuple, &other)
            } else {
                (&other, tuple)
            };
            let (v, bytes) = (self.combine)(l, r);
            out.emit(0, v, bytes);
        } else {
            mine.push_back((k, tuple.clone()));
            if mine.len() > self.window {
                mine.pop_front();
            }
        }
    }

    fn cost(&self, _tuple: &Tuple) -> SimDuration {
        self.cost
    }

    fn state_bytes(&self) -> u64 {
        let buffered: u64 = self
            .left
            .iter()
            .chain(self.right.iter())
            .map(|(_, t)| t.bytes)
            .sum();
        buffered + self.state_bytes_hint
    }

    fn snapshot(&self) -> OpState {
        op_state(KeyJoinState {
            left: self.left.iter().cloned().collect(),
            right: self.right.iter().cloned().collect(),
        })
    }

    fn restore(&mut self, state: &OpState) {
        // Wrong-typed state (a malformed explicit install shipped over
        // the network) is ignored rather than panicking the phone.
        if let Some(st) = state.as_any().downcast_ref::<KeyJoinState>() {
            self.left = st.left.iter().cloned().collect();
            self.right = st.right.iter().cloned().collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::SimTime;

    fn t(id: u64, v: u64) -> Tuple {
        Tuple::new(id, SimTime::ZERO, 8, value(v))
    }

    fn run(op: &mut dyn Operator, tuple: &Tuple, port: usize) -> Vec<(usize, TupleValue, u64)> {
        let mut out = Outputs::default();
        let mut rng = SimRng::new(0);
        op.process(tuple, port, &mut out, &mut rng);
        out.drain()
    }

    #[test]
    fn relay_fans_out() {
        let mut r = Relay::with_fanout(SimDuration::from_millis(1), 3);
        let outs = run(&mut r, &t(1, 5), 0);
        assert_eq!(outs.len(), 3);
        assert_eq!(
            outs.iter().map(|(p, _, _)| *p).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn fnmap_transforms_and_filters() {
        let mut m = FnMap::new(SimDuration::ZERO, |t| {
            let x = *t.value_as::<u64>()?;
            (x % 2 == 0).then(|| (value(x + 1), 8))
        });
        assert_eq!(run(&mut m, &t(1, 4), 0).len(), 1);
        assert!(run(&mut m, &t(2, 5), 0).is_empty());
    }

    #[test]
    fn counter_emits_periodically_and_snapshots() {
        let mut c = Counter::new(SimDuration::ZERO, 3);
        assert!(run(&mut c, &t(1, 0), 0).is_empty());
        assert!(run(&mut c, &t(2, 0), 0).is_empty());
        let outs = run(&mut c, &t(3, 0), 0);
        assert_eq!(outs.len(), 1);
        assert_eq!(c.count, 3);

        let snap = c.snapshot();
        run(&mut c, &t(4, 0), 0);
        assert_eq!(c.count, 4);
        c.restore(&snap);
        assert_eq!(c.count, 3);
    }

    #[test]
    fn counter_state_padding_inflates_size() {
        let c = Counter::new(SimDuration::ZERO, 1).with_state_padding(1 << 20);
        assert_eq!(c.state_bytes(), 8 + (1 << 20));
        assert!(!c.is_stateless());
    }

    #[test]
    fn filter_passes_predicate() {
        let mut f = Filter::new(SimDuration::ZERO, |t| *t.value_as::<u64>().unwrap() > 10);
        assert!(run(&mut f, &t(1, 5), 0).is_empty());
        assert_eq!(run(&mut f, &t(2, 15), 0).len(), 1);
    }

    #[test]
    fn keyjoin_matches_across_ports() {
        let mut j = KeyJoin::new(
            SimDuration::ZERO,
            16,
            |t| *t.value_as::<u64>().unwrap() / 10, // key = tens digit
            |l, r| {
                let s = l.value_as::<u64>().unwrap() + r.value_as::<u64>().unwrap();
                (value(s), 8)
            },
        );
        assert!(run(&mut j, &t(1, 42), 0).is_empty(), "no partner yet");
        assert_eq!(j.buffered(), (1, 0));
        let outs = run(&mut j, &t(2, 43), 1);
        assert_eq!(outs.len(), 1);
        assert_eq!((*outs[0].1).as_any().downcast_ref::<u64>(), Some(&85));
        assert_eq!(j.buffered(), (0, 0), "matched entries consumed");
    }

    #[test]
    fn keyjoin_window_bounds_buffers() {
        let mut j = KeyJoin::new(
            SimDuration::ZERO,
            2,
            |t| *t.value_as::<u64>().unwrap(),
            |_, _| (value(()), 1),
        );
        for v in 0..5 {
            run(&mut j, &t(v, v), 0);
        }
        assert_eq!(j.buffered().0, 2, "window evicts oldest");
    }

    #[test]
    fn keyjoin_snapshot_restores_buffers() {
        let mut j = KeyJoin::new(
            SimDuration::ZERO,
            8,
            |t| *t.value_as::<u64>().unwrap(),
            |_, _| (value(()), 1),
        );
        run(&mut j, &t(1, 10), 0);
        run(&mut j, &t(2, 20), 1);
        let snap = j.snapshot();
        assert!(j.state_bytes() >= 16);
        run(&mut j, &t(3, 10), 1); // consumes left entry
        assert_eq!(j.buffered(), (0, 1));
        j.restore(&snap);
        assert_eq!(j.buffered(), (1, 1));
    }
}

/// Keeps one tuple in `k`, dropping the rest (load shedding / decimation).
/// Stateful (the phase survives checkpoints so sampling stays uniform).
#[derive(Debug)]
pub struct Sampler {
    k: u64,
    seen: u64,
    cost: SimDuration,
}

/// Snapshot payload of [`Sampler`].
#[derive(Debug, Clone)]
pub struct SamplerState(pub u64);

impl Sampler {
    /// Keep every `k`-th tuple.
    pub fn new(cost: SimDuration, k: u64) -> Self {
        Sampler {
            k: k.max(1),
            seen: 0,
            cost,
        }
    }
}

impl Operator for Sampler {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.k) {
            out.emit(0, tuple.value.clone(), tuple.bytes);
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        8
    }
    fn snapshot(&self) -> OpState {
        op_state(SamplerState(self.seen))
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<SamplerState>() {
            self.seen = s.0;
        }
    }
}

/// Tumbling-window aggregate over `f64`-convertible values: emits
/// `(count, sum, min, max)` every `window` inputs. Stateful.
#[allow(clippy::type_complexity)]
pub struct WindowAgg {
    window: u64,
    cost: SimDuration,
    extract: Box<dyn Fn(&Tuple) -> Option<f64> + Send>,
    acc: WindowAccum,
}

/// Running aggregate (also the snapshot payload).
#[derive(Debug, Clone, Copy)]
pub struct WindowAccum {
    /// Inputs in the current window.
    pub count: u64,
    /// Sum of extracted values.
    pub sum: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Default for WindowAccum {
    fn default() -> Self {
        WindowAccum {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl WindowAgg {
    /// Aggregate every `window` inputs through `extract`.
    pub fn new(
        cost: SimDuration,
        window: u64,
        extract: impl Fn(&Tuple) -> Option<f64> + Send + 'static,
    ) -> Self {
        WindowAgg {
            window: window.max(1),
            cost,
            extract: Box::new(extract),
            acc: WindowAccum::default(),
        }
    }
}

impl Operator for WindowAgg {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        if let Some(x) = (self.extract)(tuple) {
            self.acc.count += 1;
            self.acc.sum += x;
            self.acc.min = self.acc.min.min(x);
            self.acc.max = self.acc.max.max(x);
            if self.acc.count >= self.window {
                out.emit(0, value(self.acc), 32);
                self.acc = WindowAccum::default();
            }
        }
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
    fn state_bytes(&self) -> u64 {
        32
    }
    fn snapshot(&self) -> OpState {
        op_state(self.acc)
    }
    fn restore(&mut self, st: &OpState) {
        if let Some(s) = (**st).as_any().downcast_ref::<WindowAccum>() {
            self.acc = *s;
        }
    }
}

/// Merges any number of input streams onto one output port. Stateless.
pub struct Union {
    cost: SimDuration,
}

impl Union {
    /// New union.
    pub fn new(cost: SimDuration) -> Self {
        Union { cost }
    }
}

impl Operator for Union {
    fn process(&mut self, tuple: &Tuple, _port: usize, out: &mut Outputs, _rng: &mut SimRng) {
        out.emit(0, tuple.value.clone(), tuple.bytes);
    }
    fn cost(&self, _t: &Tuple) -> SimDuration {
        self.cost
    }
}

#[cfg(test)]
mod more_ops_tests {
    use super::*;
    use simkernel::SimTime;

    fn t(id: u64, v: u64) -> Tuple {
        Tuple::new(id, SimTime::ZERO, 8, value(v))
    }

    fn run(op: &mut dyn Operator, tuple: &Tuple, port: usize) -> Vec<(usize, TupleValue, u64)> {
        let mut out = Outputs::default();
        let mut rng = SimRng::new(0);
        op.process(tuple, port, &mut out, &mut rng);
        out.drain()
    }

    #[test]
    fn sampler_keeps_one_in_k() {
        let mut s = Sampler::new(SimDuration::ZERO, 3);
        let kept: usize = (0..9).map(|i| run(&mut s, &t(i, i), 0).len()).sum();
        assert_eq!(kept, 3);
        // Snapshot/restore preserves the phase.
        let snap = s.snapshot();
        run(&mut s, &t(9, 9), 0);
        s.restore(&snap);
        let outs = run(&mut s, &t(9, 9), 0);
        assert!(!outs.is_empty() || s.state_bytes() == 8);
    }

    #[test]
    fn window_agg_emits_stats() {
        let mut w = WindowAgg::new(SimDuration::ZERO, 3, |t| {
            t.value_as::<u64>().map(|&v| v as f64)
        });
        assert!(run(&mut w, &t(1, 10), 0).is_empty());
        assert!(run(&mut w, &t(2, 20), 0).is_empty());
        let outs = run(&mut w, &t(3, 30), 0);
        assert_eq!(outs.len(), 1);
        let acc = (*outs[0].1).as_any().downcast_ref::<WindowAccum>().unwrap();
        assert_eq!(acc.count, 3);
        assert!((acc.sum - 60.0).abs() < 1e-12);
        assert!((acc.min - 10.0).abs() < 1e-12);
        assert!((acc.max - 30.0).abs() < 1e-12);
    }

    #[test]
    fn window_agg_snapshot_round_trip() {
        let mut w = WindowAgg::new(SimDuration::ZERO, 10, |t| {
            t.value_as::<u64>().map(|&v| v as f64)
        });
        run(&mut w, &t(1, 5), 0);
        run(&mut w, &t(2, 7), 0);
        let snap = w.snapshot();
        run(&mut w, &t(3, 100), 0);
        w.restore(&snap);
        let acc = (*w.snapshot())
            .as_any()
            .downcast_ref::<WindowAccum>()
            .cloned()
            .unwrap();
        assert_eq!(acc.count, 2);
        assert!((acc.sum - 12.0).abs() < 1e-12);
    }

    #[test]
    fn union_merges_ports() {
        let mut u = Union::new(SimDuration::ZERO);
        for port in 0..3 {
            let outs = run(&mut u, &t(port as u64, 1), port);
            assert_eq!(outs.len(), 1);
            assert_eq!(outs[0].0, 0, "all inputs exit on port 0");
        }
    }
}
