//! Query networks: the DAG of operators a stream application is made of
//! (Fig. 1a of the paper).
//!
//! The graph stores *specifications* — names, kinds, wiring, and a
//! factory per operator. Factories matter for fault tolerance: when the
//! controller replaces a failed phone it "sends the code" to the new
//! phone, which instantiates fresh operators and restores their state
//! from the checkpoint.

use std::fmt;
use std::sync::Arc;

use crate::operator::Operator;

/// Operator id: dense index into the graph's operator table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Edge id. Real edges are dense indices; each source operator also has
/// a *pseudo-edge* (high bit set) on which its external input arrives,
/// so source input can queue like any other stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

const SOURCE_BIT: u32 = 0x8000_0000;

impl EdgeId {
    /// Raw index (real edges only).
    pub fn index(self) -> usize {
        debug_assert!(!self.is_source(), "source pseudo-edge has no index");
        self.0 as usize
    }

    /// The pseudo-edge feeding external input into source op `op`.
    pub fn source(op: OpId) -> EdgeId {
        EdgeId(SOURCE_BIT | op.0)
    }

    /// True for source pseudo-edges.
    pub fn is_source(self) -> bool {
        self.0 & SOURCE_BIT != 0
    }

    /// The source op a pseudo-edge feeds.
    pub fn source_op(self) -> Option<OpId> {
        self.is_source().then_some(OpId(self.0 & !SOURCE_BIT))
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_source() {
            write!(f, "e[src→op{}]", self.0 & !SOURCE_BIT)
        } else {
            write!(f, "e{}", self.0)
        }
    }
}

/// Role of an operator in the query network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Fetches data from external sensors / upstream regions.
    Source,
    /// Ordinary computation.
    Compute,
    /// Publishes results to users / downstream regions.
    Sink,
}

/// Factory producing a fresh instance of an operator ("the code").
pub type OpFactory = Arc<dyn Fn() -> Box<dyn Operator> + Send + Sync>;

/// One operator specification.
pub struct OpSpec {
    /// Display name (e.g. "C0", "haar-counter").
    pub name: String,
    /// Role.
    pub kind: OpKind,
    factory: OpFactory,
    /// Incoming real edges, in port order.
    pub in_edges: Vec<EdgeId>,
    /// Outgoing real edges, in port order.
    pub out_edges: Vec<EdgeId>,
}

impl OpSpec {
    /// Instantiate the operator.
    pub fn instantiate(&self) -> Box<dyn Operator> {
        (self.factory)()
    }

    /// The input port index of `edge` on this operator.
    pub fn in_port(&self, edge: EdgeId) -> Option<usize> {
        if edge.is_source() {
            return Some(0);
        }
        self.in_edges.iter().position(|&e| e == edge)
    }
}

impl fmt::Debug for OpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpSpec")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("in", &self.in_edges)
            .field("out", &self.out_edges)
            .finish()
    }
}

/// A directed edge between two operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producer.
    pub from: OpId,
    /// Consumer.
    pub to: OpId,
}

/// The query network.
#[derive(Debug, Default)]
pub struct QueryGraph {
    ops: Vec<OpSpec>,
    edges: Vec<Edge>,
}

impl QueryGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an operator.
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        factory: impl Fn() -> Box<dyn Operator> + Send + Sync + 'static,
    ) -> OpId {
        // simlint::allow(P001): graph construction happens before the sim starts, never on the event path; a >4B-op graph is a programming error
        let id = OpId(u32::try_from(self.ops.len()).expect("too many ops"));
        self.ops.push(OpSpec {
            name: name.into(),
            kind,
            factory: Arc::new(factory),
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        id
    }

    /// Add an operator from an already-boxed factory (graph-rewriting
    /// helpers like rep-2's duplication use this).
    pub fn add_op_boxed(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        factory: Box<dyn Fn() -> Box<dyn Operator> + Send + Sync>,
    ) -> OpId {
        // simlint::allow(P001): graph construction happens before the sim starts, never on the event path; a >4B-op graph is a programming error
        let id = OpId(u32::try_from(self.ops.len()).expect("too many ops"));
        self.ops.push(OpSpec {
            name: name.into(),
            kind,
            factory: Arc::from(factory),
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        id
    }

    /// Share an operator's factory (for graph rewriting).
    pub fn factory_of(&self, op: OpId) -> OpFactory {
        Arc::clone(&self.ops[op.index()].factory)
    }

    /// Connect `from` → `to`; returns the new edge.
    pub fn connect(&mut self, from: OpId, to: OpId) -> EdgeId {
        assert!(from.index() < self.ops.len(), "unknown op {from:?}");
        assert!(to.index() < self.ops.len(), "unknown op {to:?}");
        // simlint::allow(P001): graph construction happens before the sim starts, never on the event path; a >4B-edge graph is a programming error
        let id = EdgeId(u32::try_from(self.edges.len()).expect("too many edges"));
        self.edges.push(Edge { from, to });
        self.ops[from.index()].out_edges.push(id);
        self.ops[to.index()].in_edges.push(id);
        id
    }

    /// Operator count.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Edge count (real edges).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Operator spec by id.
    pub fn op(&self, id: OpId) -> &OpSpec {
        &self.ops[id.index()]
    }

    /// Edge endpoints by id (real edges).
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// The operator a queue keyed by `edge` feeds (handles pseudo-edges).
    pub fn edge_target(&self, edge: EdgeId) -> OpId {
        match edge.source_op() {
            Some(op) => op,
            None => self.edge(edge).to,
        }
    }

    /// All op ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len()).map(|i| OpId(i as u32))
    }

    /// Ids of source operators.
    pub fn sources(&self) -> Vec<OpId> {
        self.op_ids()
            .filter(|&id| self.op(id).kind == OpKind::Source)
            .collect()
    }

    /// Ids of sink operators.
    pub fn sinks(&self) -> Vec<OpId> {
        self.op_ids()
            .filter(|&id| self.op(id).kind == OpKind::Sink)
            .collect()
    }

    /// Find an op by name (test/report helper).
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        self.op_ids().find(|&id| self.op(id).name == name)
    }

    /// Topological order of operators. `Err` if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<OpId>, String> {
        let n = self.ops.len();
        let mut indeg: Vec<usize> = self.ops.iter().map(|o| o.in_edges.len()).collect();
        let mut queue: Vec<OpId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| OpId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &e in &self.ops[id.index()].out_edges {
                let to = self.edge(e).to;
                indeg[to.index()] -= 1;
                if indeg[to.index()] == 0 {
                    queue.push(to);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err("query network contains a cycle".into())
        }
    }

    /// Validate the structural invariants the runtime relies on.
    pub fn validate(&self) -> Result<(), String> {
        if self.ops.is_empty() {
            return Err("empty query network".into());
        }
        self.topo_order()?;
        let mut has_source = false;
        let mut has_sink = false;
        for id in self.op_ids() {
            let op = self.op(id);
            match op.kind {
                OpKind::Source => {
                    has_source = true;
                    if !op.in_edges.is_empty() {
                        return Err(format!("source '{}' has incoming edges", op.name));
                    }
                }
                OpKind::Sink => {
                    has_sink = true;
                    if !op.out_edges.is_empty() {
                        return Err(format!("sink '{}' has outgoing edges", op.name));
                    }
                    if op.in_edges.is_empty() {
                        return Err(format!("sink '{}' is disconnected", op.name));
                    }
                }
                OpKind::Compute => {
                    if op.in_edges.is_empty() || op.out_edges.is_empty() {
                        return Err(format!(
                            "compute op '{}' must have inputs and outputs",
                            op.name
                        ));
                    }
                }
            }
        }
        if !has_source {
            return Err("query network has no source".into());
        }
        if !has_sink {
            return Err("query network has no sink".into());
        }
        Ok(())
    }

    /// Upstream neighbor ops of `op` (dedup preserving first occurrence).
    pub fn upstream_ops(&self, op: OpId) -> Vec<OpId> {
        let mut v = Vec::new();
        for &e in &self.op(op).in_edges {
            let from = self.edge(e).from;
            if !v.contains(&from) {
                v.push(from);
            }
        }
        v
    }

    /// Downstream neighbor ops of `op`.
    pub fn downstream_ops(&self, op: OpId) -> Vec<OpId> {
        let mut v = Vec::new();
        for &e in &self.op(op).out_edges {
            let to = self.edge(e).to;
            if !v.contains(&to) {
                v.push(to);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Relay;
    use simkernel::SimDuration;

    fn relay() -> Box<dyn Operator> {
        Box::new(Relay::new(SimDuration::from_millis(1)))
    }

    /// Diamond: S → A, S → B, A → J, B → J, J → K.
    fn diamond() -> (QueryGraph, [OpId; 5]) {
        let mut g = QueryGraph::new();
        let s = g.add_op("S", OpKind::Source, relay);
        let a = g.add_op("A", OpKind::Compute, relay);
        let b = g.add_op("B", OpKind::Compute, relay);
        let j = g.add_op("J", OpKind::Compute, relay);
        let k = g.add_op("K", OpKind::Sink, relay);
        g.connect(s, a);
        g.connect(s, b);
        g.connect(a, j);
        g.connect(b, j);
        g.connect(j, k);
        (g, [s, a, b, j, k])
    }

    #[test]
    fn diamond_validates() {
        let (g, _) = diamond();
        assert!(g.validate().is_ok());
        assert_eq!(g.op_count(), 5);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, [s, a, b, j, k]) = diamond();
        let order = g.topo_order().unwrap();
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(s) < pos(a));
        assert!(pos(s) < pos(b));
        assert!(pos(a) < pos(j));
        assert!(pos(b) < pos(j));
        assert!(pos(j) < pos(k));
    }

    #[test]
    fn cycle_detected() {
        let mut g = QueryGraph::new();
        let s = g.add_op("S", OpKind::Source, relay);
        let a = g.add_op("A", OpKind::Compute, relay);
        let b = g.add_op("B", OpKind::Compute, relay);
        let k = g.add_op("K", OpKind::Sink, relay);
        g.connect(s, a);
        g.connect(a, b);
        g.connect(b, a); // cycle
        g.connect(b, k);
        assert!(g.validate().is_err());
    }

    #[test]
    fn source_with_inputs_rejected() {
        let mut g = QueryGraph::new();
        let s1 = g.add_op("S1", OpKind::Source, relay);
        let s2 = g.add_op("S2", OpKind::Source, relay);
        let k = g.add_op("K", OpKind::Sink, relay);
        g.connect(s1, s2); // illegal
        g.connect(s2, k);
        assert!(g.validate().unwrap_err().contains("source"));
    }

    #[test]
    fn sink_with_outputs_rejected() {
        let mut g = QueryGraph::new();
        let s = g.add_op("S", OpKind::Source, relay);
        let k = g.add_op("K", OpKind::Sink, relay);
        let a = g.add_op("A", OpKind::Compute, relay);
        let k2 = g.add_op("K2", OpKind::Sink, relay);
        g.connect(s, k);
        g.connect(k, a); // illegal: sink with an outgoing edge
        g.connect(a, k2);
        assert!(g.validate().unwrap_err().contains("sink"));
    }

    #[test]
    fn neighbors() {
        let (g, [s, a, b, j, k]) = diamond();
        assert_eq!(g.upstream_ops(j), vec![a, b]);
        assert_eq!(g.downstream_ops(s), vec![a, b]);
        assert_eq!(g.upstream_ops(s), vec![]);
        assert_eq!(g.downstream_ops(k), vec![]);
    }

    #[test]
    fn ports_and_targets() {
        let (g, [s, _a, _b, j, _k]) = diamond();
        let e0 = g.op(s).out_edges[0];
        assert_eq!(g.op(g.edge(e0).to).in_port(e0), Some(0));
        let j_in = &g.op(j).in_edges;
        assert_eq!(g.op(j).in_port(j_in[1]), Some(1));
        assert_eq!(g.edge_target(e0), g.edge(e0).to);
    }

    #[test]
    fn source_pseudo_edges() {
        let (g, [s, ..]) = diamond();
        let pe = EdgeId::source(s);
        assert!(pe.is_source());
        assert_eq!(pe.source_op(), Some(s));
        assert_eq!(g.edge_target(pe), s);
        assert_eq!(g.op(s).in_port(pe), Some(0));
        // Real edges are not pseudo.
        assert!(!g.op(s).out_edges[0].is_source());
    }

    #[test]
    fn lookup_by_name() {
        let (g, [_, a, ..]) = diamond();
        assert_eq!(g.op_by_name("A"), Some(a));
        assert_eq!(g.op_by_name("Z"), None);
    }

    #[test]
    fn empty_graph_invalid() {
        assert!(QueryGraph::new().validate().is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ops::Relay;
    use proptest::prelude::*;
    use simkernel::SimDuration;

    /// Build a random layered DAG: sources → k compute layers → sink.
    fn random_layered(widths: &[usize], wiring: &[u8]) -> QueryGraph {
        let mut g = QueryGraph::new();
        let relay = || Box::new(Relay::new(SimDuration::from_millis(1))) as Box<dyn Operator>;
        let mut layers: Vec<Vec<OpId>> = Vec::new();
        for (li, &w) in widths.iter().enumerate() {
            let kind = if li == 0 {
                OpKind::Source
            } else if li + 1 == widths.len() {
                OpKind::Sink
            } else {
                OpKind::Compute
            };
            let layer: Vec<OpId> = (0..w.max(1))
                .map(|i| g.add_op(format!("L{li}N{i}"), kind, relay))
                .collect();
            layers.push(layer);
        }
        // Connect consecutive layers; wiring bytes pick fan patterns,
        // guaranteeing at least one in/out edge per interior node.
        let mut wix = 0usize;
        let mut next = || {
            let b = wiring[wix % wiring.len()];
            wix += 1;
            b as usize
        };
        for li in 0..layers.len() - 1 {
            let (a, b) = (layers[li].clone(), layers[li + 1].clone());
            for (i, &from) in a.iter().enumerate() {
                g.connect(from, b[(i + next()) % b.len()]);
            }
            for (j, &to) in b.iter().enumerate() {
                // Ensure every next-layer node has an input.
                if g.op(to).in_edges.is_empty() {
                    g.connect(a[(j + next()) % a.len()], to);
                }
            }
        }
        g
    }

    proptest! {
        /// Random layered DAGs always validate, topo-sort consistently,
        /// and neighbor queries agree with the edge table.
        #[test]
        fn prop_layered_dags_validate(
            widths in prop::collection::vec(1usize..5, 3..6),
            wiring in prop::collection::vec(any::<u8>(), 4..16),
        ) {
            let g = random_layered(&widths, &wiring);
            prop_assert!(g.validate().is_ok(), "{:?}", g.validate());
            let order = g.topo_order().unwrap();
            prop_assert_eq!(order.len(), g.op_count());
            let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
            for e in 0..g.edge_count() {
                let edge = g.edge(EdgeId(e as u32));
                prop_assert!(pos(edge.from) < pos(edge.to));
                prop_assert!(g.downstream_ops(edge.from).contains(&edge.to));
                prop_assert!(g.upstream_ops(edge.to).contains(&edge.from));
            }
            // Every op instantiates.
            for op in g.op_ids() {
                let _ = g.op(op).instantiate();
            }
        }
    }
}
