//! Sink-side probes: the paper's two headline metrics.
//!
//! * **Latency**: "we record in each tuple the times when it enters and
//!   leaves the system, and average the duration across all the tuples
//!   in a time window."
//! * **Throughput**: "we count the number of output tuples per second
//!   when the system is steady."

use simkernel::{SimDuration, SimTime};

/// One sink output observation.
#[derive(Debug, Clone, Copy)]
pub struct SinkSample {
    /// When the tuple left the system.
    pub at: SimTime,
    /// Enter-to-leave duration.
    pub latency: SimDuration,
}

/// Metrics collected by one node.
#[derive(Debug, Default, Clone)]
pub struct NodeMetrics {
    /// Sink outputs (time, latency).
    pub sink_samples: Vec<SinkSample>,
    /// Tuples processed by this node's operators.
    pub processed: u64,
    /// Source inputs dropped because the source queue was full.
    pub source_drops: u64,
    /// Source inputs accepted.
    pub source_inputs: u64,
    /// Sink outputs discarded during catch-up.
    pub catchup_discards: u64,
    /// Items dropped because routing state was stale or malformed
    /// (unassigned destination op, out-of-range slot, missing port).
    pub routing_drops: u64,
    /// Tuple sends shed by a congested (full) transport queue — the
    /// peer was alive, the pipe was saturated (cellular collapse).
    pub tx_queue_drops: u64,
    /// Tuple sends aged out behind a network-weather partition — the
    /// peer may be alive on the far side, so like `tx_queue_drops`
    /// these never feed failure detection.
    pub tx_severed: u64,
    /// Accumulated CPU busy time.
    pub cpu_busy: SimDuration,
}

impl NodeMetrics {
    /// Record a sink output.
    pub fn record_sink(&mut self, at: SimTime, latency: SimDuration) {
        self.sink_samples.push(SinkSample { at, latency });
    }

    /// Sink outputs within `[from, to)`.
    pub fn outputs_in(&self, from: SimTime, to: SimTime) -> usize {
        self.sink_samples
            .iter()
            .filter(|s| s.at >= from && s.at < to)
            .count()
    }

    /// Mean latency of sink outputs within `[from, to)`.
    pub fn mean_latency_in(&self, from: SimTime, to: SimTime) -> Option<SimDuration> {
        let window: Vec<_> = self
            .sink_samples
            .iter()
            .filter(|s| s.at >= from && s.at < to)
            .collect();
        if window.is_empty() {
            return None;
        }
        let total: u64 = window.iter().map(|s| s.latency.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / window.len() as u64))
    }

    /// Throughput (tuples/s) within `[from, to)`.
    pub fn throughput_in(&self, from: SimTime, to: SimTime) -> f64 {
        let span = (to - from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.outputs_in(from, to) as f64 / span
    }

    /// Latency percentile (0..=100) within a window.
    pub fn latency_percentile_in(
        &self,
        from: SimTime,
        to: SimTime,
        pct: f64,
    ) -> Option<SimDuration> {
        let mut window: Vec<SimDuration> = self
            .sink_samples
            .iter()
            .filter(|s| s.at >= from && s.at < to)
            .map(|s| s.latency)
            .collect();
        if window.is_empty() {
            return None;
        }
        window.sort_unstable();
        let ix = ((pct / 100.0) * (window.len() - 1) as f64).round() as usize;
        Some(window[ix.min(window.len() - 1)])
    }

    /// Merge another node's metrics (region aggregation).
    pub fn merge(&mut self, other: &NodeMetrics) {
        self.sink_samples.extend_from_slice(&other.sink_samples);
        self.processed += other.processed;
        self.source_drops += other.source_drops;
        self.source_inputs += other.source_inputs;
        self.catchup_discards += other.catchup_discards;
        self.routing_drops += other.routing_drops;
        self.tx_queue_drops += other.tx_queue_drops;
        self.tx_severed += other.tx_severed;
        self.cpu_busy += other.cpu_busy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m_with(samples: &[(u64, u64)]) -> NodeMetrics {
        let mut m = NodeMetrics::default();
        for &(at_s, lat_ms) in samples {
            m.record_sink(SimTime::from_secs(at_s), SimDuration::from_millis(lat_ms));
        }
        m
    }

    #[test]
    fn windowed_throughput() {
        let m = m_with(&[(1, 10), (2, 10), (3, 10), (11, 10)]);
        // Window [0, 10): 3 outputs over 10 s.
        let tput = m.throughput_in(SimTime::ZERO, SimTime::from_secs(10));
        assert!((tput - 0.3).abs() < 1e-12);
        assert_eq!(
            m.outputs_in(SimTime::from_secs(10), SimTime::from_secs(20)),
            1
        );
    }

    #[test]
    fn windowed_mean_latency() {
        let m = m_with(&[(1, 100), (2, 200), (20, 900)]);
        let mean = m
            .mean_latency_in(SimTime::ZERO, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(mean.as_millis(), 150);
        assert!(m
            .mean_latency_in(SimTime::from_secs(30), SimTime::from_secs(40))
            .is_none());
    }

    #[test]
    fn percentiles() {
        let m = m_with(&[(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
        let p50 = m
            .latency_percentile_in(SimTime::ZERO, SimTime::from_secs(10), 50.0)
            .unwrap();
        assert_eq!(p50.as_millis(), 30);
        let p100 = m
            .latency_percentile_in(SimTime::ZERO, SimTime::from_secs(10), 100.0)
            .unwrap();
        assert_eq!(p100.as_millis(), 50);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = m_with(&[(1, 10)]);
        let b = m_with(&[(2, 20)]);
        a.merge(&b);
        assert_eq!(a.sink_samples.len(), 2);
    }

    #[test]
    fn empty_window_throughput_zero() {
        let m = NodeMetrics::default();
        assert_eq!(m.throughput_in(SimTime::ZERO, SimTime::ZERO), 0.0);
        assert_eq!(m.throughput_in(SimTime::ZERO, SimTime::from_secs(5)), 0.0);
    }
}
