//! Fault-tolerance scheme hooks.
//!
//! The node runtime is scheme-agnostic; every fault-tolerance strategy
//! — MobiStreams' token-triggered checkpointing as well as the rep-2 /
//! local / dist-n baselines — plugs in through [`FtScheme`]. Hooks are
//! invoked at the points the paper's schemes differ:
//!
//! | Hook | MobiStreams | rep-2 | local / dist-n |
//! |---|---|---|---|
//! | `on_source_input` | source preservation + region broadcast | — | — |
//! | `on_marker` | token alignment, async checkpoint | — | — |
//! | `on_emit` | — | — | output retention (input preservation) |
//! | `allow_sink_publish` | catch-up discard | secondary-flow squelch | — |
//! | `on_custom` | bitmaps, TCP tree, recovery RPC | takeover RPC | ckpt ticks, state fetch |

use simkernel::{Ctx, EventBox};

use crate::graph::{EdgeId, OpId};
use crate::node::NodeInner;
use crate::tuple::{Marker, StreamItem, Tuple};

/// Scheme hooks invoked by [`crate::node::NodeActor`].
///
/// All methods default to "do nothing" so simple schemes stay simple;
/// [`NullScheme`] uses the defaults verbatim (the paper's `base`).
pub trait FtScheme: Send {
    /// Scheme name for traces and reports.
    fn name(&self) -> &'static str;

    /// An item arrived on `edge` (remote or local), *before* enqueue.
    /// Return `false` to drop it (e.g. replica dedup).
    fn on_item_arrival(
        &mut self,
        item: &StreamItem,
        edge: EdgeId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) -> bool {
        let _ = (item, edge, node, ctx);
        true
    }

    /// A marker reached the front of `edge`'s queue and was consumed.
    fn on_marker(&mut self, marker: Marker, edge: EdgeId, node: &mut NodeInner, ctx: &mut Ctx) {
        let _ = (marker, edge, node, ctx);
    }

    /// The node is about to route `tuple` on out-edge `edge`.
    /// Return `false` to suppress the send.
    fn on_emit(
        &mut self,
        tuple: &Tuple,
        edge: EdgeId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) -> bool {
        let _ = (tuple, edge, node, ctx);
        true
    }

    /// A sink operator finished a tuple. Return `false` to discard the
    /// result (no metrics, no inter-region publish) — used to squelch
    /// catch-up output ("sink nodes discard all results generated
    /// during catch-up", §III-D) and secondary replicas.
    fn allow_sink_publish(
        &mut self,
        tuple: &Tuple,
        op: OpId,
        node: &mut NodeInner,
        ctx: &mut Ctx,
    ) -> bool {
        let _ = (op, node, ctx);
        !tuple.replay
    }

    /// A fresh external input materialized at source `op` on this node.
    fn on_source_input(&mut self, tuple: &Tuple, op: OpId, node: &mut NodeInner, ctx: &mut Ctx) {
        let _ = (tuple, op, node, ctx);
    }

    /// An event the node runtime did not recognize. Return `true` if
    /// the scheme consumed it.
    fn on_custom(&mut self, ev: EventBox, node: &mut NodeInner, ctx: &mut Ctx) -> bool {
        let _ = (ev, node, ctx);
        false
    }

    /// The node was (re)installed by the controller.
    fn on_install(&mut self, node: &mut NodeInner, ctx: &mut Ctx) {
        let _ = (node, ctx);
    }

    /// Bytes this node currently retains for input/source preservation
    /// (Fig 10a accounting).
    fn preserved_bytes(&self, node: &NodeInner) -> u64 {
        let _ = node;
        0
    }

    /// Downcast support so harvesters can read scheme-specific
    /// statistics off a deployed node (fleet reports, probes).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// No fault tolerance at all — the paper's `base` configuration.
#[derive(Debug, Default)]
pub struct NullScheme;

impl FtScheme for NullScheme {
    fn name(&self) -> &'static str {
        "base"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
