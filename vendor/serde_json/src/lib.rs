//! Vendored shim of the slice of `serde_json` this workspace uses.

use std::fmt;

pub use serde::json::Value;

/// Serialization error. The shim serializer is infallible, so this is
/// never produced; it exists to keep call-site signatures compatible.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render())
}

/// Serialize to a pretty-printed JSON string (2-space indent, like
/// upstream serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty(2))
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_has_quoted_keys() {
        let v = ("k".to_string(), 1u64);
        let s = super::to_string_pretty(&v).unwrap();
        assert!(s.contains("\"k\""));
    }
}
