//! Vendored shim of the slice of `serde_json` this workspace uses:
//! serialization of `Serialize` types, a [`json!`] macro for ad-hoc
//! documents, and a [`from_str`] parser for reading them back.

use std::fmt;

pub use serde::json::Value;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render())
}

/// Serialize to a pretty-printed JSON string (2-space indent, like
/// upstream serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty(2))
}

/// Lower any serializable value into a [`Value`] tree. Backs the
/// [`json!`] macro; rarely called directly.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Build a [`Value`] from object-literal syntax. Unlike upstream,
/// values must be expressions: write nested documents as
/// `"key": json!({ ... })` and arrays as `vec![...]`.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Parse a JSON document into a [`Value`] tree.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one whole UTF-8 character, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let t = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(t, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_has_quoted_keys() {
        let v = ("k".to_string(), 1u64);
        let s = super::to_string_pretty(&v).unwrap();
        assert!(s.contains("\"k\""));
    }

    #[test]
    fn parse_round_trips_render() {
        let doc = json!({
            "name": "bench",
            "ok": true,
            "none": Value::Null,
            "runs": vec![json!({"threads": 1u64, "rate": 2.5f64})],
        });
        let back = from_str(&to_string_pretty(&doc).unwrap()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back["runs"], doc["runs"]);
        assert_eq!(back["missing"], Value::Null);
    }

    #[test]
    fn parse_handles_escapes_and_nesting() {
        let v = from_str(r#"{"s": "a\n\"bA", "a": [1, -2.5e1, []]}"#).unwrap();
        assert_eq!(v["s"], Value::Str("a\n\"bA".into()));
        assert_eq!(
            v["a"],
            Value::Arr(vec![Value::Num(1.0), Value::Num(-25.0), Value::Arr(vec![])])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{\"k\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("true false").is_err());
    }
}
