//! Vendored shim of the slice of `criterion` this workspace uses.
//!
//! `cargo bench` runs each registered function `sample_size` times and
//! prints mean wall-clock time per iteration — no warm-up, outlier
//! rejection, or statistics like real criterion; enough to compare hot
//! paths locally and to keep `cargo check --benches` meaningful.

use std::time::Instant;

/// Opaque value barrier, forwarding to the compiler intrinsic.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The bench driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Iterations per bench function.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
            timed_iters: 0,
        };
        f(&mut b);
        if b.timed_iters > 0 {
            let per_iter = b.elapsed_ns as f64 / b.timed_iters as f64;
            println!(
                "{name:<50} {:>12.1} ns/iter ({} iters)",
                per_iter, b.timed_iters
            );
        } else {
            println!("{name:<50} (no iterations measured)");
        }
        self
    }
}

/// Times closures on behalf of [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
    timed_iters: u64,
}

impl Bencher {
    /// Run the routine `sample_size` times, timing the whole batch.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.timed_iters += self.iters;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default().sample_size(7);
        let mut runs = 0u64;
        c.bench_function("t", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(runs, 7);
    }
}
