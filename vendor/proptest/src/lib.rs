//! Vendored shim of the slice of `proptest` this workspace uses.
//!
//! Supports the sugared `proptest! { #[test] fn f(x in strategy) {..} }`
//! form with: integer-range strategies, `any::<T>()` for primitives,
//! `prop::collection::vec(strategy, len_range)`, tuples of strategies,
//! and `prop_assert!` / `prop_assert_eq!` (which panic, like plain
//! asserts — no shrinking). Case generation is deterministic per test
//! name so CI runs are reproducible; set `PROPTEST_CASES` to override
//! the per-test case count (default 64).

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A value generator. The real proptest `Strategy` also carries
    /// shrinking machinery; the shim only generates.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * u
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $ix:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// Strategy returned by [`crate::any`].
    pub struct AnyStrategy<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A constant-value strategy (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use super::TestRng;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: unit-interval scaled by a wide range.
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (u - 0.5) * 2e6
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32((rng.below(0x7F - 0x20) + 0x20) as u32).unwrap_or('a')
        }
    }
}

/// Full-range strategy for a primitive type.
pub fn any<T: arbitrary::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Module alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drive one property: deterministic seeds derived from the test name.
pub fn run_cases(name: &str, f: impl FnMut(&mut TestRng)) {
    run_cases_capped(name, u64::MAX, f);
}

/// Like [`run_cases`] but never runs more than `cap` cases — for
/// properties whose single case is expensive (e.g. a whole simulation
/// run). `PROPTEST_CASES` still lowers the count but cannot raise it
/// past the cap.
pub fn run_cases_capped(name: &str, cap: u64, mut f: impl FnMut(&mut TestRng)) {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..cases().min(cap) {
        let mut rng = TestRng::new(seed.wrapping_add(case.wrapping_mul(0x9E37_79B9)));
        f(&mut rng);
    }
}

#[macro_export]
macro_rules! proptest {
    (cases = $cap:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases_capped(stringify!($name), $cap, |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..5).contains(&y));
        }

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(any::<bool>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn tuples_sample_elementwise(t in (0u64..4, 10u32..20, 0usize..2)) {
            let (a, b, c) = t;
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
            prop_assert!(c < 2);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut first = Vec::new();
        crate::run_cases("abc", |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        crate::run_cases("abc", |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        let mut other = Vec::new();
        crate::run_cases("xyz", |rng| other.push(rng.next_u64()));
        assert_ne!(first, other);
    }
}
