//! Vendored shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the handful of items `simkernel::rng` relies on: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and a [`rngs::SmallRng`]
//! built on xoshiro256++ (the same family the real `SmallRng` uses on
//! 64-bit targets). Determinism is the only contract the workspace
//! needs; the exact stream differs from upstream `rand`.

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations. The shim RNGs are
/// infallible, so this is never constructed in practice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random number generation: raw integer output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A seedable RNG.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed with SplitMix64, matching
    /// the approach (though not the exact stream) of upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling of a value of type `Self` from raw RNG output (stands in
/// for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, as upstream does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Multiply-shift rejection-free mapping is fine here:
                // the workspace only needs uniformity good enough for
                // simulation draws, and spans are tiny vs 2^64.
                let x = rng.next_u64() as u128;
                range.start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let x = rng.next_u64() as u128;
                (range.start as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        range.start + (range.end - range.start) * f64::sample(rng)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
