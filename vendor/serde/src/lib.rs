//! Vendored shim of the slice of `serde` this workspace uses: a
//! [`Serialize`] trait that lowers values to a JSON [`json::Value`]
//! tree, plus the `#[derive(Serialize)]` macro from `serde_derive`.
//!
//! The derive produces the same shapes as real serde's default JSON
//! representation for the types in this workspace: structs become
//! objects, unit enum variants become strings, and tuple variants are
//! externally tagged (`{"Variant": ...}`).

pub use serde_derive::Serialize;

pub mod json {
    use std::fmt::Write as _;

    /// A JSON value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    /// Indexing an object by key, serde_json-style: a missing key (or
    /// a non-object receiver) yields `Null` instead of panicking, so
    /// lookups into parsed documents compose without `Option` chains.
    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            const NULL: Value = Value::Null;
            match self {
                Value::Obj(fields) => fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }

    impl std::fmt::Display for Value {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.render())
        }
    }

    fn escape_into(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_num(out: &mut String, x: f64) {
        if !x.is_finite() {
            // JSON has no Infinity/NaN; serialize as null like
            // serde_json's lossy formatters commonly surface.
            out.push_str("null");
        } else if x == x.trunc() && x.abs() < 1e15 {
            let _ = write!(out, "{}", x as i64);
        } else {
            let _ = write!(out, "{x}");
        }
    }

    impl Value {
        /// Compact rendering.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out, None, 0);
            out
        }

        /// Pretty rendering with the given indent width.
        pub fn render_pretty(&self, indent: usize) -> String {
            let mut out = String::new();
            self.render_into(&mut out, Some(indent), 0);
            out
        }

        fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
            let (nl, pad, pad_close, colon) = match indent {
                Some(w) => (
                    "\n",
                    " ".repeat(w * (depth + 1)),
                    " ".repeat(w * depth),
                    ": ",
                ),
                None => ("", String::new(), String::new(), ":"),
            };
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Num(x) => write_num(out, *x),
                Value::Str(s) => escape_into(out, s),
                Value::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(nl);
                        out.push_str(&pad);
                        v.render_into(out, indent, depth + 1);
                    }
                    out.push_str(nl);
                    out.push_str(&pad_close);
                    out.push(']');
                }
                Value::Obj(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(nl);
                        out.push_str(&pad);
                        escape_into(out, k);
                        out.push_str(colon);
                        v.render_into(out, indent, depth + 1);
                    }
                    out.push_str(nl);
                    out.push_str(&pad_close);
                    out.push('}');
                }
            }
        }
    }
}

/// Serialization to a [`json::Value`] tree.
pub trait Serialize {
    fn to_json_value(&self) -> json::Value;
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::Num(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for json::Value {
    fn to_json_value(&self) -> json::Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_json_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $ix:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> json::Value {
                json::Value::Arr(vec![$(self.$ix.to_json_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_rendering_shapes() {
        let v = json::Value::Obj(vec![
            ("title".into(), json::Value::Str("x".into())),
            (
                "rows".into(),
                json::Value::Arr(vec![json::Value::Num(1.0), json::Value::Num(2.5)]),
            ),
        ]);
        let s = v.render_pretty(2);
        assert!(s.contains("\"title\": \"x\""));
        assert!(s.contains("\"rows\": [\n"));
        assert!(s.contains("2.5"));
    }

    #[test]
    fn escapes_strings() {
        let v = json::Value::Str("a\"b\\c\nd".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn tuples_are_arrays() {
        let v = ("r".to_string(), vec![1u32, 2]).to_json_value();
        assert_eq!(v.render(), "[\"r\",[1,2]]");
    }

    #[test]
    fn nonfinite_nums_are_null() {
        assert_eq!(f64::INFINITY.to_json_value().render(), "null");
    }
}
