//! Hand-rolled `#[derive(Serialize)]` for the vendored serde shim.
//!
//! Parses the derive input with a small token walk (no `syn`/`quote`
//! available offline) and emits an `impl serde::Serialize` producing
//! serde_json-compatible shapes:
//!
//! * named-field structs → JSON objects,
//! * unit structs → `null`,
//! * tuple structs → arrays (single-field newtypes unwrap),
//! * enums → externally tagged: unit variants are strings, tuple
//!   variants `{"Variant": value-or-array}`.
//!
//! Generic types are not supported — nothing in this workspace derives
//! `Serialize` on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize) shim does not support generic types (deriving on `{name}`)");
    }

    let body = match kind.as_str() {
        "struct" => derive_struct(&name, &tokens[i..]),
        "enum" => derive_enum(&name, &tokens[i..]),
        other => panic!("derive(Serialize): unsupported item kind `{other}`"),
    };

    body.parse()
        .expect("derive(Serialize): generated code must parse")
}

/// Split the top-level token list of a brace/paren group on commas.
fn split_commas(group: &proc_macro::Group) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in group.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strip leading `#[...]` attributes and a `pub` visibility from a
/// field/variant token run.
fn strip_attrs_vis(mut toks: &[TokenTree]) -> &[TokenTree] {
    loop {
        match toks {
            [TokenTree::Punct(p), TokenTree::Group(_), rest @ ..] if p.as_char() == '#' => {
                toks = rest;
            }
            [TokenTree::Ident(id), rest @ ..] if id.to_string() == "pub" => {
                toks = match rest {
                    [TokenTree::Group(g), r @ ..] if g.delimiter() == Delimiter::Parenthesis => r,
                    _ => rest,
                };
            }
            _ => return toks,
        }
    }
}

fn derive_struct(name: &str, rest: &[TokenTree]) -> String {
    // Find the definition body: a brace group (named fields), a paren
    // group (tuple struct), or a bare `;` (unit struct).
    for t in rest {
        match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let mut pushes = String::new();
                for field in split_commas(g) {
                    let field = strip_attrs_vis(&field);
                    let fname = match field.first() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("derive(Serialize): bad field in `{name}`: {other:?}"),
                    };
                    pushes.push_str(&format!(
                        "__fields.push((\"{fname}\".to_string(), \
                         serde::Serialize::to_json_value(&self.{fname})));\n"
                    ));
                }
                return format!(
                    "impl serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> serde::json::Value {{\n\
                     let mut __fields: Vec<(String, serde::json::Value)> = Vec::new();\n\
                     {pushes}\
                     serde::json::Value::Obj(__fields)\n\
                     }}\n}}\n"
                );
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let n = split_commas(g).len();
                let body = match n {
                    0 => "serde::json::Value::Arr(Vec::new())".to_string(),
                    1 => "serde::Serialize::to_json_value(&self.0)".to_string(),
                    _ => {
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("serde::Serialize::to_json_value(&self.{i})"))
                            .collect();
                        format!("serde::json::Value::Arr(vec![{}])", items.join(", "))
                    }
                };
                return format!(
                    "impl serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> serde::json::Value {{ {body} }}\n}}\n"
                );
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => {}
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> serde::json::Value {{ serde::json::Value::Null }}\n}}\n"
    )
}

fn derive_enum(name: &str, rest: &[TokenTree]) -> String {
    let body_group = rest
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
            _ => None,
        })
        .unwrap_or_else(|| panic!("derive(Serialize): enum `{name}` has no body"));

    let mut arms = String::new();
    for variant in split_commas(body_group) {
        let variant = strip_attrs_vis(&variant);
        let vname = match variant.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("derive(Serialize): bad variant in `{name}`: {other:?}"),
        };
        match variant.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = split_commas(g).len();
                let binders: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                let pat = binders.join(", ");
                let inner = if n == 1 {
                    "serde::Serialize::to_json_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("serde::Serialize::to_json_value({b})"))
                        .collect();
                    format!("serde::json::Value::Arr(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({pat}) => serde::json::Value::Obj(vec![\
                     (\"{vname}\".to_string(), {inner})]),\n"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields: Vec<String> = split_commas(g)
                    .iter()
                    .map(|f| match strip_attrs_vis(f).first() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => {
                            panic!("derive(Serialize): bad field in `{name}::{vname}`: {other:?}")
                        }
                    })
                    .collect();
                let pat = fields.join(", ");
                let pushes: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_json_value({f}))"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {pat} }} => serde::json::Value::Obj(vec![\
                     (\"{vname}\".to_string(), serde::json::Value::Obj(vec![{}]))]),\n",
                    pushes.join(", ")
                ));
            }
            _ => {
                // Unit variant (possibly with a `= discr` we ignore).
                arms.push_str(&format!(
                    "{name}::{vname} => serde::json::Value::Str(\"{vname}\".to_string()),\n"
                ));
            }
        }
    }

    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> serde::json::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}
