//! # mobistreams-repro — facade crate
//!
//! Re-exports the whole workspace so examples, integration tests and
//! downstream users can depend on a single crate. See the README for a
//! tour and `DESIGN.md` for the system inventory.

pub use apps;
pub use baselines;
pub use dsps;
pub use experiments;
pub use mobistreams;
pub use simkernel;
pub use simnet;
