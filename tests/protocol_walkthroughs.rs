//! Cross-crate integration tests: the paper's mechanism walk-throughs
//! (Figs 5–7) exercised on full deployments.

use experiments::faults::{inject_departure, inject_failure, inject_reboot};
use experiments::{harvest, AppKind, Deployment, Platform, ScenarioConfig, Scheme};
use simkernel::{SimDuration, SimTime};

fn small(app: AppKind, scheme: Scheme, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        app,
        scheme,
        seed,
        regions: 2,
        ckpt_offset: SimDuration::from_secs(40),
        ckpt_period: SimDuration::from_secs(120),
        ..ScenarioConfig::default()
    }
}

/// Fig 5: the token wave produces committed, region-wide checkpoints.
#[test]
fn token_checkpoint_commits() {
    let mut dep = Deployment::build(small(AppKind::Bcp, Scheme::Ms, 3));
    dep.start();
    dep.run_until(SimTime::from_secs(300));
    // Two checkpoint rounds per region should have committed.
    assert!(
        dep.ms_last_complete(0) >= 2,
        "region 0 committed {} rounds",
        dep.ms_last_complete(0)
    );
    assert!(dep.ms_last_complete(1) >= 2);
    // Every node holds the committed version's data (broadcast-based
    // replication reached everyone, incl. idle nodes).
    let v = dep.ms_last_complete(0);
    let mut holders = 0;
    for &nid in &dep.regions[0].nodes {
        let na = dep.sim.actor::<dsps::node::NodeActor>(nid);
        if na.inner.store.version(v).map(|rec| rec.total_bytes() > 0) == Some(true) {
            holders += 1;
        }
    }
    assert!(
        holders >= 7,
        "checkpoint v{v} replicated to {holders}/8 nodes"
    );
}

/// Fig 5 + §III-D: a failure rolls the region back to the MRC and
/// catch-up replays preserved inputs with sink squelching.
#[test]
fn failure_recovery_restores_the_pipeline() {
    let mut dep = Deployment::build(small(AppKind::Bcp, Scheme::Ms, 6));
    dep.start();
    // Kill the D/H node (slot 2) after the first checkpoint.
    inject_failure(&mut dep, 0, 2, SimTime::from_secs(170));
    dep.run_until(SimTime::from_secs(420));
    assert!(!dep.ms_recoveries().is_empty(), "a recovery must have run");
    let rec = dep.ms_recoveries()[0];
    assert!(rec.finished > rec.started);
    assert!(
        (rec.finished - rec.started) < SimDuration::from_secs(60),
        "ms recovery is fast (got {})",
        rec.finished - rec.started
    );
    // The sink produced output after the recovery finished.
    let h = harvest(&dep, rec.finished, SimTime::from_secs(420));
    assert!(
        h.per_region[0].outputs > 0,
        "region 0 resumed publishing after recovery"
    );
    // Catch-up discarded replayed results instead of re-publishing them.
    let discards: u64 = h.per_region.iter().map(|r| r.catchup_discards).sum();
    assert!(discards > 0, "sink squelched replayed tuples");
}

/// Fig 7: a departure switches to urgent mode, transfers state over
/// cellular and replaces the phone — no rollback, no catch-up.
#[test]
fn departure_is_handled_without_rollback() {
    let mut dep = Deployment::build(small(AppKind::Bcp, Scheme::Ms, 5));
    dep.start();
    // Depart the D/H node (small operator state → quick transfer over
    // the slow cellular uplink).
    inject_departure(&mut dep, 0, 2, SimTime::from_secs(170));
    dep.run_until(SimTime::from_secs(380));
    assert!(
        dep.ms_departures_handled() >= 1,
        "departure replacement completed"
    );
    // The replacement (an idle slot) now hosts the moved operators.
    let moved: usize = dep.regions[0]
        .nodes
        .iter()
        .skip(6) // idle slots 6,7
        .map(|&nid| dep.sim.actor::<dsps::node::NodeActor>(nid).inner.ops.len())
        .sum();
    assert!(moved >= 2, "D,H moved to a standby phone (got {moved})");
    // State transfer used the cellular network.
    let h = harvest(&dep, SimTime::ZERO, SimTime::from_secs(380));
    assert!(
        h.cell_bytes.recovery > 0,
        "departing phone shipped its state over cellular"
    );
    // No failure recovery ran (departures are cheaper than failures).
    assert!(dep.ms_recoveries().is_empty());
}

/// §III-B step 3: with every phone rebooting after a full-region crash,
/// the region restarts from flash-resident checkpoint copies.
#[test]
fn full_region_crash_restarts_from_flash() {
    let mut dep = Deployment::build(small(AppKind::Bcp, Scheme::Ms, 6));
    dep.start();
    for slot in 0..8 {
        inject_failure(&mut dep, 0, slot, SimTime::from_secs(170));
        inject_reboot(&mut dep, 0, slot, SimTime::from_secs(230));
    }
    dep.run_until(SimTime::from_secs(600));
    let h = harvest(&dep, SimTime::from_secs(400), SimTime::from_secs(600));
    assert!(
        h.per_region[0].outputs > 0,
        "region recovered from flash copies and publishes again"
    );
}

/// Multi-region cascading: downstream regions receive the upstream
/// region's predictions over cellular (Fig 4).
#[test]
fn regions_cascade_over_cellular() {
    let mut dep = Deployment::build(small(AppKind::Bcp, Scheme::Base, 7));
    dep.start();
    dep.run_until(SimTime::from_secs(300));
    // Region 1's S0 has no local bus feed; any processed S0 input came
    // from region 0's sink over the cellular network.
    let h = harvest(&dep, SimTime::ZERO, SimTime::from_secs(300));
    assert!(h.per_region[1].outputs > 0);
    assert!(
        h.cell_bytes.data > 0,
        "inter-region tuples crossed cellular"
    );
}

/// The server-based platform (Table I) is bottlenecked by the 3G
/// uplink: its throughput tracks the uplink rate, not the servers.
#[test]
fn server_platform_is_uplink_bound() {
    let mut lo = Deployment::build(ScenarioConfig {
        app: AppKind::Bcp,
        scheme: Scheme::Base,
        platform: Platform::Server {
            uplink_bps: 16_000.0,
        },
        checkpoints_enabled: false,
        regions: 2,
        seed: 8,
        ..ScenarioConfig::default()
    });
    lo.start();
    lo.run_until(SimTime::from_secs(500));
    let h_lo = harvest(&lo, SimTime::from_secs(100), SimTime::from_secs(500));

    let mut hi = Deployment::build(ScenarioConfig {
        app: AppKind::Bcp,
        scheme: Scheme::Base,
        platform: Platform::Server {
            uplink_bps: 320_000.0,
        },
        checkpoints_enabled: false,
        regions: 2,
        seed: 8,
        ..ScenarioConfig::default()
    });
    hi.start();
    hi.run_until(SimTime::from_secs(500));
    let h_hi = harvest(&hi, SimTime::from_secs(100), SimTime::from_secs(500));

    assert!(
        h_hi.mean_throughput > 5.0 * h_lo.mean_throughput,
        "20x uplink must lift throughput by far more than 5x ({} vs {})",
        h_hi.mean_throughput,
        h_lo.mean_throughput
    );
    assert!(
        h_lo.mean_latency_s > h_hi.mean_latency_s,
        "slower uplink queues longer"
    );
}

/// Determinism: identical configs and seeds produce identical runs.
#[test]
fn deployments_are_deterministic() {
    let run = |seed| {
        let mut dep = Deployment::build(small(AppKind::SignalGuru, Scheme::Ms, seed));
        dep.start();
        dep.run_until(SimTime::from_secs(260));
        let h = harvest(&dep, SimTime::from_secs(60), SimTime::from_secs(260));
        (
            dep.sim.events_processed(),
            h.per_region.iter().map(|r| r.outputs).collect::<Vec<_>>(),
            h.wifi_bytes.total(),
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).0, run(43).0, "different seeds diverge");
}

/// rep-2 takeover: a single failure flips the primary flow and output
/// continues (active standby semantics).
#[test]
fn rep2_takeover_keeps_publishing() {
    let mut dep = Deployment::build(small(AppKind::Bcp, Scheme::Rep2, 9));
    dep.start();
    // Slot 1 hosts flow-0 operators under the compressed placement.
    inject_failure(&mut dep, 0, 1, SimTime::from_secs(170));
    dep.run_until(SimTime::from_secs(400));
    let co = dep
        .sim
        .actor::<baselines::BaselineCoordinator>(dep.coordinator.unwrap());
    assert!(co.takeovers >= 1, "primary flipped to the standby flow");
    assert_eq!(co.stops, 0, "one failure must not kill rep-2");
    let h = harvest(&dep, SimTime::from_secs(200), SimTime::from_secs(400));
    assert!(h.per_region[0].outputs > 0, "standby flow publishes");
}

/// dist-n: recovery fetches peer state copies and resumes; it tolerates
/// n but not n+1 simultaneous failures.
#[test]
fn dist_n_tolerates_exactly_n() {
    // n = 1, one failure: recovers.
    let mut ok = Deployment::build(small(AppKind::Bcp, Scheme::Dist(1), 10));
    ok.start();
    inject_failure(&mut ok, 0, 2, SimTime::from_secs(170));
    ok.run_until(SimTime::from_secs(420));
    {
        let co = ok
            .sim
            .actor::<baselines::BaselineCoordinator>(ok.coordinator.unwrap());
        assert_eq!(co.stops, 0);
        assert!(!co.recoveries.is_empty(), "dist-1 recovered one failure");
    }
    // n = 1, two simultaneous failures: unrecoverable (region stops).
    let mut bad = Deployment::build(small(AppKind::Bcp, Scheme::Dist(1), 10));
    bad.start();
    inject_failure(&mut bad, 0, 2, SimTime::from_secs(170));
    inject_failure(&mut bad, 0, 3, SimTime::from_secs(170));
    bad.run_until(SimTime::from_secs(420));
    let co = bad
        .sim
        .actor::<baselines::BaselineCoordinator>(bad.coordinator.unwrap());
    assert!(co.stops >= 1, "dist-1 cannot survive a 2-node burst");
}

/// Fig 10 invariants on byte accounting: ms preserves far less than
/// input preservation, and dist-n network cost grows with n.
#[test]
fn byte_accounting_shapes() {
    let run = |scheme| {
        let mut dep = Deployment::build(small(AppKind::Bcp, scheme, 11));
        dep.start();
        dep.run_until(SimTime::from_secs(400));
        harvest(&dep, SimTime::ZERO, SimTime::from_secs(400))
    };
    let ms = run(Scheme::Ms);
    let local = run(Scheme::Local);
    let d1 = run(Scheme::Dist(1));
    let d3 = run(Scheme::Dist(3));
    assert!(
        local.preserved_bytes > 2 * ms.preserved_bytes,
        "input preservation ({}) ≫ source preservation ({})",
        local.preserved_bytes,
        ms.preserved_bytes
    );
    assert!(
        d3.ckpt_repl_bytes > 2 * d1.ckpt_repl_bytes,
        "dist-3 ships ~3x dist-1's checkpoint bytes"
    );
    assert_eq!(
        local.ckpt_repl_bytes, 0,
        "local checkpoints stay off the network"
    );
}

/// Extension (related work, Hwang'05): upstream backup re-hosts a
/// failed node's operators on its upstream neighbor and replays the
/// retained outputs — one failure survivable, a second is fatal.
#[test]
fn upstream_backup_takes_over_once() {
    let mut dep = Deployment::build(small(AppKind::Bcp, Scheme::Upstream, 12));
    dep.start();
    // Kill the counter node (slot 3): its upstream (D/H, slot 2) takes
    // its operators over.
    inject_failure(&mut dep, 0, 3, SimTime::from_secs(170));
    dep.run_until(SimTime::from_secs(400));
    {
        let co = dep
            .sim
            .actor::<baselines::BaselineCoordinator>(dep.coordinator.unwrap());
        assert_eq!(co.stops, 0, "one failure survivable");
    }
    let host = dep
        .sim
        .actor::<dsps::node::NodeActor>(dep.regions[0].nodes[2]);
    assert!(
        host.inner.ops.len() >= 4,
        "upstream neighbor hosts its own + the failed ops (got {})",
        host.inner.ops.len()
    );
    let h = harvest(&dep, SimTime::from_secs(250), SimTime::from_secs(400));
    assert!(h.per_region[0].outputs > 0, "pipeline runs after takeover");

    // Losing a node TOGETHER with the upstream neighbor that holds its
    // retained outputs is fatal — the backup data is gone ("it only
    // handles single node failure"). Kill the camera source (S1) and
    // the D/H node simultaneously: D's only upstream is S1.
    let mut dep2 = Deployment::build(small(AppKind::Bcp, Scheme::Upstream, 12));
    dep2.start();
    inject_failure(&mut dep2, 0, 0, SimTime::from_secs(170));
    inject_failure(&mut dep2, 0, 2, SimTime::from_secs(170));
    dep2.run_until(SimTime::from_secs(300));
    let co2 = dep2
        .sim
        .actor::<baselines::BaselineCoordinator>(dep2.coordinator.unwrap());
    assert!(
        co2.stops >= 1,
        "losing a node plus its backup stops the region"
    );
}
