//! SignalGuru across four cascaded intersections (Fig 3): windshield
//! cameras photograph the lights, color/shape/motion chains detect
//! them, the SVM predicts the transition schedule, and each
//! intersection forwards its schedule downstream.
//!
//! ```sh
//! cargo run --release --example signalguru
//! ```

use mobistreams_repro::apps::calib::Calibration;
use mobistreams_repro::apps::image::{FrameGen, LightColor};
use mobistreams_repro::apps::svm::PhasePredictor;
use mobistreams_repro::apps::vision::{color_filter, shape_filter};
use mobistreams_repro::experiments::{harvest, AppKind, Deployment, ScenarioConfig, Scheme};
use mobistreams_repro::simkernel::{SimRng, SimTime};

fn main() {
    // --- The kernels really run: demo them standalone first. ----------
    let mut rng = SimRng::new(9);
    let gen = FrameGen {
        mean_faces: 0.0,
        ..FrameGen::default()
    };
    println!("=== kernel demo: detecting a green light ===");
    let frame = gen.light_frame_at(&mut rng, 0, LightColor::Green, 30, 12);
    let blob = color_filter(&frame).expect("color filter finds the lamp");
    println!(
        "color filter: {:?} blob at ({:.1}, {:.1}), area {}",
        blob.color, blob.cx, blob.cy, blob.area
    );
    println!(
        "shape filter (circle test): {}",
        shape_filter(&frame, &blob)
    );
    let mut predictor = PhasePredictor::new([40.0, 4.0, 35.0], 0);
    for _ in 0..30 {
        predictor.observe(LightColor::Green, 35.0);
    }
    println!(
        "SVM predictor: 10s into green → {:.1}s remaining\n",
        predictor.remaining(LightColor::Green, 10.0)
    );

    // --- The full 4-intersection deployment. ---------------------------
    let cal = Calibration::default();
    println!(
        "=== SignalGuru: 4 intersections, frames every {:.2}s, phases {:?}s ===\n",
        cal.sg_frame_period.as_secs_f64(),
        cal.sg_phase_s
    );
    let mut dep = Deployment::build(ScenarioConfig {
        app: AppKind::SignalGuru,
        scheme: Scheme::Ms,
        regions: 4,
        cal,
        seed: 11,
        ..ScenarioConfig::default()
    });
    dep.start();
    let end = SimTime::from_secs(900);
    dep.run_until(end);

    let h = harvest(&dep, SimTime::from_secs(120), end);
    for (i, r) in h.per_region.iter().enumerate() {
        println!(
            "intersection {i}: {:>4} schedule advisories  {:.3}/s  latency {:>4.1}s",
            r.outputs,
            r.throughput,
            r.mean_latency_s.unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nmean per-intersection throughput {:.3}/s (paper's Table I: 0.8/s with FT off)",
        h.mean_throughput
    );
    println!(
        "WiFi — data {:.1} MB, checkpoint {:.1} MB, preservation {:.1} MB",
        h.wifi_bytes.data as f64 / 1e6,
        h.wifi_bytes.checkpoint as f64 / 1e6,
        h.wifi_bytes.preservation as f64 / 1e6
    );
}
