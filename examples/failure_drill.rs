//! Failure drill: walk through the paper's fault-tolerance story on one
//! deployment — burst failures (§III-D), departures with urgent mode
//! and state transfer (§III-E, Fig 7), and a full-region blackout that
//! recovers from flash-resident checkpoint copies.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use mobistreams_repro::experiments::faults::{
    failure_order, inject_departure, inject_failure, inject_reboot,
};
use mobistreams_repro::experiments::{harvest, AppKind, Deployment, ScenarioConfig, Scheme};
use mobistreams_repro::simkernel::{SimDuration, SimTime};

fn window_tput(dep: &Deployment, from: u64, to: u64) -> f64 {
    harvest(dep, SimTime::from_secs(from), SimTime::from_secs(to)).per_region[0].throughput
}

fn main() {
    let mut dep = Deployment::build(ScenarioConfig {
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        regions: 1,
        ckpt_offset: SimDuration::from_secs(60),
        ckpt_period: SimDuration::from_secs(180),
        seed: 33,
        ..ScenarioConfig::default()
    });
    dep.start();
    let order = failure_order(&dep, 0);
    println!("fault order (compute → sink → source → idle): {order:?}\n");

    // Act 1: a 2-node burst failure, phones reboot a minute later.
    println!(
        "t=300s  BURST: killing slots {:?} simultaneously",
        &order[..2]
    );
    for &s in &order[..2] {
        inject_failure(&mut dep, 0, s, SimTime::from_secs(300));
        inject_reboot(&mut dep, 0, s, SimTime::from_secs(360));
    }

    // Act 2: a phone drives away (departure): urgent mode + state
    // transfer, no rollback.
    println!("t=600s  DEPARTURE: slot {} leaves the region", order[2]);
    inject_departure(&mut dep, 0, order[2], SimTime::from_secs(600));

    dep.run_until(SimTime::from_secs(900));

    println!("\n--- controller log ---");
    for r in &dep.ms_recoveries() {
        println!(
            "recovery: {} failure(s), detected t={:.0}s, recovered in {:.1}s",
            r.failures,
            r.started.as_secs_f64(),
            (r.finished - r.started).as_secs_f64()
        );
    }
    println!("departures handled: {}", dep.ms_departures_handled());
    println!("region stops (bypass): {}", dep.ms_stops());

    println!("\n--- throughput through the drill (region 0) ---");
    for (label, a, b) in [
        ("steady state ", 120u64, 300u64),
        ("burst window ", 300, 480),
        ("recovered    ", 480, 600),
        ("departure    ", 600, 780),
        ("after drill  ", 780, 900),
    ] {
        println!(
            "{label} [{a:>3}s,{b:>3}s): {:.3} tuples/s",
            window_tput(&dep, a, b)
        );
    }

    let h = harvest(&dep, SimTime::ZERO, SimTime::from_secs(900));
    println!(
        "\ncatch-up discards: {} (replayed results squelched at the sink)",
        h.per_region[0].catchup_discards
    );
    println!(
        "recovery bytes over cellular: {:.2} MB (code + state transfer)",
        h.cell_bytes.recovery as f64 / 1e6
    );
}
