//! Quickstart: build a tiny stream pipeline of your own, run it under
//! MobiStreams fault tolerance, kill a phone, and watch the region
//! recover from the most-recent checkpoint.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use mobistreams_repro::dsps::graph::{OpKind, QueryGraph};
use mobistreams_repro::dsps::node::NodeActor;
use mobistreams_repro::dsps::ops::{Counter, Relay};
use mobistreams_repro::experiments::faults::{inject_failure, inject_reboot};
use mobistreams_repro::experiments::{harvest, AppKind, Deployment, ScenarioConfig, Scheme};
use mobistreams_repro::simkernel::{SimDuration, SimTime};

fn main() {
    // --- 1. A query network from scratch (the dsps layer) -------------
    // S → A(counter) → K, validated like any paper graph.
    let mut g = QueryGraph::new();
    let s = g.add_op("S", OpKind::Source, || {
        Box::new(Relay::new(SimDuration::from_millis(2)))
    });
    let a = g.add_op("A", OpKind::Compute, || {
        Box::new(Counter::new(SimDuration::from_millis(50), 1).with_state_padding(256 * 1024))
    });
    let k = g.add_op("K", OpKind::Sink, || {
        Box::new(Relay::new(SimDuration::from_millis(1)))
    });
    g.connect(s, a);
    g.connect(a, k);
    g.validate().expect("valid DAG");
    println!(
        "built a {}-operator query network (validated)",
        g.op_count()
    );
    let _ = Arc::new(g); // yours to deploy with the dsps runtime

    // --- 2. The fastest way to a full system: a paper deployment ------
    // One BCP region cascade under MobiStreams, checkpointing every 2
    // minutes.
    let mut dep = Deployment::build(ScenarioConfig {
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        regions: 2,
        ckpt_offset: SimDuration::from_secs(40),
        ckpt_period: SimDuration::from_secs(120),
        seed: 1,
        ..ScenarioConfig::default()
    });
    dep.start();
    dep.run_until(SimTime::from_secs(170));
    println!("\nt=170s  steady state reached; first checkpoint committed");

    // --- 3. Kill a phone, watch MobiStreams recover --------------------
    inject_failure(&mut dep, 0, 2, SimTime::from_secs(180)); // the D/H phone
    inject_reboot(&mut dep, 0, 2, SimTime::from_secs(260));
    dep.run_until(SimTime::from_secs(420));

    for r in &dep.ms_recoveries() {
        println!(
            "t={:.0}s  region {} recovered {} failure(s) in {:.1}s (restore + catch-up)",
            r.started.as_secs_f64(),
            r.region,
            r.failures,
            (r.finished - r.started).as_secs_f64()
        );
    }

    let h = harvest(&dep, SimTime::from_secs(60), SimTime::from_secs(420));
    println!("\nper-region results over [60s, 420s):");
    for (i, r) in h.per_region.iter().enumerate() {
        println!(
            "  region {i}: {} predictions ({:.3}/s), mean latency {:.1}s, {} catch-up discards",
            r.outputs,
            r.throughput,
            r.mean_latency_s.unwrap_or(f64::NAN),
            r.catchup_discards
        );
    }
    println!(
        "network: {:.1} MB data, {:.1} MB checkpoint, {:.1} MB preservation over WiFi",
        h.wifi_bytes.data as f64 / 1e6,
        h.wifi_bytes.checkpoint as f64 / 1e6,
        h.wifi_bytes.preservation as f64 / 1e6
    );

    // --- 4. Peek inside a phone ---------------------------------------
    let node = dep.sim.actor::<NodeActor>(dep.regions[0].nodes[5]);
    println!(
        "\nphone r0/s5 hosts {:?}, processed {} tuples, retains {:.1} MB of checkpoints",
        node.inner.ops.keys().collect::<Vec<_>>(),
        node.inner.metrics.processed,
        node.inner.store.retained_bytes() as f64 / 1e6
    );
}
