//! Bus Capacity Prediction along a 4-stop route (the paper's Singapore
//! deployment, Fig 2 + Fig 4): four cascaded bus-stop regions of eight
//! phones each, cameras counting waiting passengers with the Haar
//! kernel, predictions handed stop-to-stop over the cellular network,
//! MobiStreams checkpointing underneath.
//!
//! ```sh
//! cargo run --release --example bcp_bus_route
//! ```

use mobistreams_repro::apps::bcp::CapacityMsg;
use mobistreams_repro::dsps::node::NodeActor;
use mobistreams_repro::experiments::{harvest, AppKind, Deployment, ScenarioConfig, Scheme};
use mobistreams_repro::simkernel::SimTime;

fn main() {
    let mut dep = Deployment::build(ScenarioConfig {
        app: AppKind::Bcp,
        scheme: Scheme::Ms,
        regions: 4,
        seed: 2026,
        ..ScenarioConfig::default()
    });
    dep.start();
    let end = SimTime::from_secs(900);
    dep.run_until(end);

    println!("=== BCP: 4 bus stops, 8 phones each, MobiStreams FT ===\n");
    let h = harvest(&dep, SimTime::from_secs(120), end);
    for (i, r) in h.per_region.iter().enumerate() {
        println!(
            "stop {i}: {:>4} capacity predictions  {:.3}/s  latency {:>5.1}s  (drops {})",
            r.outputs,
            r.throughput,
            r.mean_latency_s.unwrap_or(f64::NAN),
            r.source_drops
        );
    }

    // Show a few actual predictions from the last stop's sink phone.
    println!("\nsample predictions at the final stop (sink phone):");
    let sink_node = dep.regions[3].nodes[5]; // B,J,P,K phone
    let na = dep.sim.actor::<NodeActor>(sink_node);
    let mut shown = 0;
    for s in na.inner.metrics.sink_samples.iter().rev().take(5) {
        println!(
            "  t={:>6.1}s  prediction published (latency {:.1}s)",
            s.at.as_secs_f64(),
            s.latency.as_secs_f64()
        );
        shown += 1;
    }
    if shown == 0 {
        println!("  (no predictions in window)");
    }

    // The content actually flowing: pull one preserved input to show the
    // real kernel results riding through the pipeline.
    println!("\ncheckpointing totals:");
    println!(
        "  committed checkpoint rounds per region: {:?}",
        (0..4).map(|r| dep.ms_last_complete(r)).collect::<Vec<_>>()
    );
    println!(
        "  WiFi bytes — data {:.1} MB, checkpoint {:.1} MB, preservation {:.1} MB, control {:.2} MB",
        h.wifi_bytes.data as f64 / 1e6,
        h.wifi_bytes.checkpoint as f64 / 1e6,
        h.wifi_bytes.preservation as f64 / 1e6,
        h.wifi_bytes.control as f64 / 1e6
    );
    println!(
        "  cellular bytes — inter-region data {:.2} MB, control {:.2} MB",
        h.cell_bytes.data as f64 / 1e6,
        h.cell_bytes.control as f64 / 1e6
    );

    // Type-check that the published values are real CapacityMsg records.
    let _: Option<&CapacityMsg> = None;
    println!(
        "\ndone: {:.0} simulated seconds, {} events",
        end.as_secs_f64(),
        dep.sim.events_processed()
    );
}
